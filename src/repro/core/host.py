"""Host-side sequential models of the queue algorithms.

These are *step machines*: each atomic primitive of the algorithm is one
``step()`` call, and a test driver (plain loops or Hypothesis) interleaves
steps of many logical threads in any order.  Because every step touches
shared state exactly once, any interleaving the driver produces is a
legal concurrent history — which lets property tests check the algorithms'
safety invariants (no token lost, none duplicated, queue-full detected)
without the timing engine.

This is the reproduction's correctness oracle for the *algorithms*; the
SIMT engine is the oracle for their *performance*.
"""

from __future__ import annotations

from typing import List, Optional

from .constants import DNA
from .queue_api import QueueFull


class HostRFANQueue:
    """Sequential-state RF/AN queue: AFA counters + sentinel slots."""

    def __init__(self, capacity: int, circular: bool = False):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self.circular = circular
        self.data: List[int] = [DNA] * capacity
        self.front = 0
        self.rear = 0

    # each method below is one atomic step ------------------------------
    def afa_front(self, n: int) -> int:
        """Reserve ``n`` dequeue slots; returns the old Front (never fails)."""
        old = self.front
        self.front += n
        return old

    def afa_rear(self, n: int) -> int:
        """Reserve ``n`` enqueue slots; returns the old Rear (never fails)."""
        old = self.rear
        self.rear += n
        return old

    def _phys(self, raw: int) -> Optional[int]:
        if self.circular:
            return raw % self.capacity
        return raw if raw < self.capacity else None

    def poll_slot(self, raw: int) -> Optional[int]:
        """One data-arrival check: the token if present, else None.

        Taking the token writes the sentinel back (one plain write; the
        slot owner is the only reader, §4.2: "No atomics are needed
        because this is the only thread accessing the slot").
        """
        phys = self._phys(raw)
        if phys is None:
            return None
        v = self.data[phys]
        if v == DNA:
            return None
        self.data[phys] = DNA
        return v

    def store_slot(self, raw: int, token: int) -> None:
        """One enqueue-side token copy; aborts on queue-full."""
        if token < 0:
            raise ValueError("task tokens must be non-negative")
        phys = self._phys(raw)
        if phys is None:
            raise QueueFull(f"raw index {raw} beyond capacity {self.capacity}")
        if self.data[phys] != DNA:
            raise QueueFull(f"slot {phys} not data-not-arrived")
        self.data[phys] = token


class RFANProducer:
    """A logical producer thread: reserve once, then copy token by token."""

    def __init__(self, queue: HostRFANQueue, tokens: List[int]):
        self.queue = queue
        self.tokens = list(tokens)
        self.base: Optional[int] = None
        self.copied = 0

    @property
    def done(self) -> bool:
        return self.copied == len(self.tokens)

    def step(self) -> bool:
        """Advance one atomic step; returns True if something happened."""
        if self.done:
            return False
        if self.base is None:
            self.base = self.queue.afa_rear(len(self.tokens))
            return True
        self.queue.store_slot(self.base + self.copied, self.tokens[self.copied])
        self.copied += 1
        return True


class RFANConsumer:
    """A logical consumer thread: reserve a slot once, then poll it."""

    def __init__(self, queue: HostRFANQueue):
        self.queue = queue
        self.slot: Optional[int] = None
        self.got: Optional[int] = None
        self.polls = 0

    @property
    def done(self) -> bool:
        return self.got is not None

    def step(self) -> bool:
        if self.done:
            return False
        if self.slot is None:
            self.slot = self.queue.afa_front(1)
            return True
        self.polls += 1
        v = self.queue.poll_slot(self.slot)
        if v is not None:
            self.got = v
        return True


class HostCasQueue:
    """Sequential-state model of the BASE/AN CAS queue with valid flags."""

    def __init__(self, capacity: int, circular: bool = False):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self.circular = circular
        self.data: List[int] = [0] * capacity
        self.valid: List[int] = [0] * capacity
        self.front = 0
        self.rear = 0

    def _phys(self, raw: int) -> int:
        return raw % self.capacity if self.circular else raw

    # atomic steps -------------------------------------------------------
    def read_ctrl(self) -> tuple[int, int]:
        return self.front, self.rear

    def cas_front(self, expected: int, new: int) -> bool:
        if self.front == expected:
            self.front = new
            return True
        return False

    def cas_rear(self, expected: int, new: int) -> bool:
        if self.rear == expected:
            self.rear = new
            return True
        return False

    def is_full(self, extra: int) -> bool:
        if self.circular:
            return self.rear + extra - self.front > self.capacity
        return self.rear + extra > self.capacity

    def read_valid(self, raw: int) -> int:
        return self.valid[self._phys(raw)]

    def write_data(self, raw: int, token: int) -> None:
        self.data[self._phys(raw)] = token

    def write_valid(self, raw: int, flag: int) -> None:
        self.valid[self._phys(raw)] = flag

    def read_data(self, raw: int) -> int:
        return self.data[self._phys(raw)]


class CasProducer:
    """BASE-style producer: CAS-reserve a slot, write data, set valid."""

    _RESERVE, _DATA, _VALID, _DONE = range(4)

    def __init__(self, queue: HostCasQueue, token: int):
        self.queue = queue
        self.token = token
        self.phase = self._RESERVE
        self.slot: Optional[int] = None
        self.cas_failures = 0

    @property
    def done(self) -> bool:
        return self.phase == self._DONE

    def step(self) -> bool:
        if self.done:
            return False
        q = self.queue
        if self.phase == self._RESERVE:
            front, rear = q.read_ctrl()
            if q.is_full(1):
                raise QueueFull("queue full")
            if q.cas_rear(rear, rear + 1):
                self.slot = rear
                self.phase = self._DATA
            else:
                self.cas_failures += 1
            return True
        if self.phase == self._DATA:
            assert self.slot is not None
            q.write_data(self.slot, self.token)
            self.phase = self._VALID
            return True
        q.write_valid(self.slot, 1)  # type: ignore[arg-type]
        self.phase = self._DONE
        return True


class CasConsumer:
    """BASE-style consumer: CAS-reserve, spin on valid, read, clear."""

    _RESERVE, _SPIN, _READ, _DONE = range(4)

    def __init__(self, queue: HostCasQueue):
        self.queue = queue
        self.phase = self._RESERVE
        self.slot: Optional[int] = None
        self.got: Optional[int] = None
        self.cas_failures = 0
        self.empty_seen = 0

    @property
    def done(self) -> bool:
        return self.phase == self._DONE

    def step(self) -> bool:
        if self.done:
            return False
        q = self.queue
        if self.phase == self._RESERVE:
            front, rear = q.read_ctrl()
            if rear - front <= 0:
                self.empty_seen += 1
                return True  # queue-empty exception; stay hungry
            if q.cas_front(front, front + 1):
                self.slot = front
                self.phase = self._SPIN
            else:
                self.cas_failures += 1
            return True
        if self.phase == self._SPIN:
            assert self.slot is not None
            if q.read_valid(self.slot):
                self.phase = self._READ
            return True
        self.got = q.read_data(self.slot)  # type: ignore[arg-type]
        q.write_valid(self.slot, 0)  # type: ignore[arg-type]
        self.phase = self._DONE
        return True
