"""The persistent-thread task scheduler (Algorithm 1 + §4).

A persistent kernel launches "just enough" wavefronts to saturate the
device; every wavefront loops through *work cycles* until all tasks are
done:

1. read the global done flag — exit if set;
2. ``queue.acquire`` — hungry lanes ask the queue variant for tokens;
3. one :class:`Worker` work cycle — lanes holding tokens process up to
   ``subtasks_per_cycle`` uniform sub-tasks (paper footnote 3) and may
   discover new tasks and/or complete their current one;
4. account the new tasks in the in-flight counter, ``queue.publish``
   them, then account the completions — the wavefront whose decrement
   drives the counter to zero raises the done flag.

Termination protocol
--------------------
The paper does not spell out its termination test; we use a global
in-flight counter (see DESIGN.md §7).  Ordering matters: newly discovered
tasks are counted *before* their tokens become visible and completions
are counted *after*, so the counter can only reach zero when no task is
running, queued, or about to be queued.  Counter updates are fetch-adds
(they never fail); variants with the arbitrary-n property aggregate them
through the proxy lane, BASE pays one per lane — consistent with which
variant owns lane aggregation machinery.

Progress signals
----------------
The probe marks this loop fires — ``sched_tokens`` after every acquire,
``wf_phase("work")`` around each work cycle, ``sched_done`` at the
termination store — double as the liveness signals of
:class:`repro.obs.watchdog.LivenessWatchdog`: a launch whose flight
recorder sees no work marks, deliveries, stores, or exits for a whole
watch window is wedged, and the recorder's per-wavefront phase marks
name the dominant stall class in the resulting post-mortem.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator, Optional, Protocol

import numpy as np

from repro.simt import (
    AtomicKind,
    AtomicRMW,
    GlobalMemory,
    KernelContext,
    MemRead,
    MemWrite,
    Op,
)
from .constants import DEFAULT_SUBTASKS_PER_CYCLE, DONE, PENDING
from .queue_api import DeviceQueue
from .state import WavefrontQueueState

K_WORK_CYCLES = "scheduler.work_cycles"
K_IDLE_CYCLES = "scheduler.idle_lane_cycles"
K_TASKS_DONE = "scheduler.tasks_completed"


def sched_shard_key(shard: int, name: str) -> str:
    """Per-home-shard scheduler counter key (``scheduler.shard<i>.*``)."""
    return f"scheduler.shard{shard}.{name}"


@dataclass
class WorkCycleResult:
    """What a worker did in one work cycle.

    Attributes
    ----------
    completed:
        Lane mask: the lane's current task finished this cycle.
    new_counts:
        Per-lane number of newly discovered ready tasks.
    new_tokens:
        ``(wavefront_size, max_new)`` array; lane ``i`` discovered
        ``new_tokens[i, :new_counts[i]]``.
    """

    completed: np.ndarray
    new_counts: np.ndarray
    new_tokens: np.ndarray

    @staticmethod
    def nothing(wavefront_size: int) -> "WorkCycleResult":
        return WorkCycleResult(
            completed=np.zeros(wavefront_size, dtype=bool),
            new_counts=np.zeros(wavefront_size, dtype=np.int64),
            new_tokens=np.zeros((wavefront_size, 1), dtype=np.int64),
        )


class Worker(Protocol):
    """An irregular workload plugged into the persistent scheduler.

    ``make_state`` creates per-wavefront private state (lane registers);
    ``work_cycle`` is a generator performing one work cycle for the lanes
    of ``st`` that hold tokens, returning a :class:`WorkCycleResult`.

    A task may span several work cycles (e.g. a BFS vertex with more
    children than ``subtasks_per_cycle``): the worker simply does not set
    ``completed`` for that lane, and the lane keeps its token.
    """

    def make_state(self, ctx: KernelContext) -> object: ...

    def work_cycle(
        self,
        ctx: KernelContext,
        wstate: object,
        st: WavefrontQueueState,
    ) -> Generator[Op, Op, WorkCycleResult]: ...


class SchedulerControl:
    """Host handle for the scheduler's global control buffer."""

    def __init__(self, prefix: str = "sched"):
        self.prefix = prefix
        self.buf_ctrl = f"{prefix}.ctrl"  # [PENDING, DONE]

    def allocate(self, memory: GlobalMemory) -> None:
        memory.alloc(self.buf_ctrl, 2, fill=0)

    def seed(self, memory: GlobalMemory, n_initial: int) -> None:
        """Record the initially ready tasks before launch."""
        if n_initial < 0:
            raise ValueError("n_initial must be non-negative")
        ctrl = memory[self.buf_ctrl]
        ctrl[PENDING] = n_initial
        ctrl[DONE] = 1 if n_initial == 0 else 0

    def is_done(self, memory: GlobalMemory) -> bool:
        return bool(memory[self.buf_ctrl][DONE])

    def pending(self, memory: GlobalMemory) -> int:
        return int(memory[self.buf_ctrl][PENDING])


def persistent_kernel(
    queue: DeviceQueue,
    worker: Worker,
    sched: SchedulerControl,
    subtasks_per_cycle: int = DEFAULT_SUBTASKS_PER_CYCLE,
    aggregate_termination: Optional[bool] = None,
):
    """Build the persistent-thread kernel for a queue variant + worker.

    The returned callable is a :data:`repro.simt.Kernel`; launch it with
    ``Engine.launch``.  ``subtasks_per_cycle`` is forwarded to workers via
    ``ctx.params`` under ``"subtasks_per_cycle"``.

    ``aggregate_termination`` overrides whether in-flight-counter updates
    go through the proxy lane (default: follow the queue's arbitrary-n
    property); the termination ablation bench uses this.
    """
    aggregated = (
        queue.arbitrary_n
        if aggregate_termination is None
        else aggregate_termination
    )

    def kernel(ctx: KernelContext) -> Generator[Op, Op, None]:
        ctx.params.setdefault("subtasks_per_cycle", subtasks_per_cycle)
        stats = ctx.stats
        wf_size = ctx.device.wavefront_size
        st = WavefrontQueueState(wf_size)
        wstate = worker.make_state(ctx)
        max_cycles: Optional[int] = ctx.params.get("max_work_cycles")  # type: ignore[assignment]
        cycles = 0

        done_idx = np.array([DONE], dtype=np.int64)
        # one reusable poll op: the engine fills `result` afresh at every
        # completion and never holds a read past its wavefront's resume,
        # so re-yielding the same object each work cycle is safe and spares
        # one allocation per poll in the simulator's hottest loop.
        dread = MemRead(sched.buf_ctrl, done_idx, trans=1, prechecked=True)
        custom = stats.custom
        probe = ctx.probe
        # per-cycle counters accumulate in locals and flush in the finally
        # block (the engine closes kernel generators at launch teardown,
        # so the flush also runs for aborted or timed-out launches).
        idle_lanes = 0
        try:
            while True:
                # 1. WorkRemains()? — poll the done flag.  An elided poll
                # (dread.fresh False) means the control word is untouched
                # since the previous cycle's check, which saw 0.
                if probe is not None:
                    probe.wf_phase(ctx.wf_id, "termination")
                yield dread
                if dread.fresh and int(dread.result[0]):
                    break
                cycles += 1
                if max_cycles is not None and cycles > max_cycles:
                    raise RuntimeError(
                        f"wavefront {ctx.wf_id} exceeded max_work_cycles="
                        f"{max_cycles}; termination protocol stuck?"
                    )

                # 2. GetWorkToken() for hungry lanes.
                yield from queue.acquire(ctx, st)
                idle_lanes += wf_size - st.n_token
                if probe is not None:
                    probe.sched_tokens(probe.now, ctx.wf_id, st.n_token, wf_size)
                if st.n_token == 0:
                    continue

                # 3. DoWorkUnit() — one work cycle of uniform sub-tasks.
                if probe is not None:
                    probe.wf_phase(ctx.wf_id, "work")
                res = yield from worker.work_cycle(ctx, wstate, st)
                n_new = int(res.new_counts.sum())
                n_done = int(res.completed.sum())

                # 4. ScheduleNewlyDiscoveredWorkTokens() with termination
                #    accounting: count new tasks in-flight *before* their
                #    tokens appear, completions *after*.
                if n_new:
                    if probe is not None:
                        probe.wf_phase(ctx.wf_id, "termination")
                    if aggregated:
                        op = AtomicRMW(
                            sched.buf_ctrl, PENDING, AtomicKind.ADD, n_new
                        )
                        yield op
                    else:
                        has_new = res.new_counts > 0
                        k = int(has_new.sum())
                        op = AtomicRMW(
                            sched.buf_ctrl,
                            np.full(k, PENDING, dtype=np.int64),
                            AtomicKind.ADD,
                            res.new_counts[has_new],
                        )
                        yield op
                    yield from queue.publish(
                        ctx, st, res.new_counts, res.new_tokens
                    )

                if n_done:
                    if probe is not None:
                        probe.wf_phase(ctx.wf_id, "termination")
                    st.complete(np.flatnonzero(res.completed))
                    custom[K_TASKS_DONE] += n_done
                    if aggregated:
                        op = AtomicRMW(
                            sched.buf_ctrl, PENDING, AtomicKind.ADD, -n_done
                        )
                        yield op
                        remaining = int(op.old[0]) - n_done
                    else:
                        op = AtomicRMW(
                            sched.buf_ctrl,
                            np.full(n_done, PENDING, dtype=np.int64),
                            AtomicKind.ADD,
                            -1,
                        )
                        yield op
                        remaining = int(op.old.min()) - 1
                    if remaining == 0:
                        if probe is not None:
                            probe.sched_done(probe.now, ctx.wf_id)
                        yield MemWrite(sched.buf_ctrl, DONE, 1)
                    elif remaining < 0:
                        raise RuntimeError(
                            "in-flight counter went negative: a task was "
                            "completed twice or never accounted"
                        )
        finally:
            custom[K_WORK_CYCLES] = custom.get(K_WORK_CYCLES, 0) + cycles
            custom[K_IDLE_CYCLES] = custom.get(K_IDLE_CYCLES, 0) + idle_lanes

    return kernel


def sharded_persistent_kernel(
    queue: DeviceQueue,
    worker: Worker,
    sched: SchedulerControl,
    subtasks_per_cycle: int = DEFAULT_SUBTASKS_PER_CYCLE,
    aggregate_termination: Optional[bool] = None,
):
    """Shard-aware persistent kernel for a :class:`~repro.core.queue_sharded.ShardedQueue`.

    Same work-cycle structure as :func:`persistent_kernel`, with two
    shard-specific changes:

    * **Fused termination accounting.**  The baseline kernel pays two
      fetch-adds on the global in-flight counter per productive work
      cycle (``+n_new`` before publish, ``-n_done`` after).  Here both
      are folded into a single ``+(n_new - n_done)`` fetch-add issued
      *before* publish, halving traffic on the scheduler's hot word —
      the one word queue sharding cannot split.  This is safe: the fused
      delta still counts discoveries no later than their tokens become
      visible, so the counter reaching zero proves ``n_new == 0`` for
      the observing wavefront (its own discoveries are included in
      ``remaining``) and no task anywhere is running, queued, or about
      to be queued.
    * **Per-home-shard counters.**  ``scheduler.shard<i>.work_cycles`` /
      ``idle_lane_cycles`` / ``tasks_completed`` expose cross-shard load
      imbalance in every run's metrics without any probe attached.

    For a single-shard queue this *returns* :func:`persistent_kernel`'s
    kernel unchanged, keeping the shards=1 configuration bit-identical
    to the bare inner variant (same op stream, no extra counter keys).
    """
    n_shards = int(getattr(queue, "n_shards", 1))
    if n_shards <= 1:
        return persistent_kernel(
            queue, worker, sched, subtasks_per_cycle, aggregate_termination
        )

    def kernel(ctx: KernelContext) -> Generator[Op, Op, None]:
        ctx.params.setdefault("subtasks_per_cycle", subtasks_per_cycle)
        stats = ctx.stats
        wf_size = ctx.device.wavefront_size
        st = WavefrontQueueState(wf_size)
        wstate = worker.make_state(ctx)
        max_cycles: Optional[int] = ctx.params.get("max_work_cycles")  # type: ignore[assignment]
        cycles = 0

        home = ctx.wf_id % n_shards
        custom = stats.custom
        k_cycles = sched_shard_key(home, "work_cycles")
        k_idle = sched_shard_key(home, "idle_lane_cycles")
        k_done = sched_shard_key(home, "tasks_completed")

        done_idx = np.array([DONE], dtype=np.int64)
        dread = MemRead(sched.buf_ctrl, done_idx, trans=1, prechecked=True)
        probe = ctx.probe
        # per-cycle counters accumulate in locals and flush in the finally
        # block (the engine closes kernel generators at launch teardown,
        # so the flush also runs for aborted or timed-out launches).
        idle_lanes = 0
        try:
            while True:
                # An elided poll (dread.fresh False) means the control
                # word is untouched since the previous check, which saw 0.
                if probe is not None:
                    probe.wf_phase(ctx.wf_id, "termination")
                yield dread
                if dread.fresh and int(dread.result[0]):
                    break
                cycles += 1
                if max_cycles is not None and cycles > max_cycles:
                    raise RuntimeError(
                        f"wavefront {ctx.wf_id} exceeded max_work_cycles="
                        f"{max_cycles}; termination protocol stuck?"
                    )

                yield from queue.acquire(ctx, st)
                idle_lanes += wf_size - st.n_token
                if probe is not None:
                    probe.sched_tokens(probe.now, ctx.wf_id, st.n_token, wf_size)
                if st.n_token == 0:
                    continue

                if probe is not None:
                    probe.wf_phase(ctx.wf_id, "work")
                res = yield from worker.work_cycle(ctx, wstate, st)
                n_new = int(res.new_counts.sum())
                n_done = int(res.completed.sum())

                # fused accounting: one fetch-add covers +new and -done, and
                # must land before the new tokens become visible (publish).
                delta = n_new - n_done
                if n_new or n_done:
                    if probe is not None:
                        probe.wf_phase(ctx.wf_id, "termination")
                    op = AtomicRMW(sched.buf_ctrl, PENDING, AtomicKind.ADD, delta)
                    yield op
                    remaining = int(op.old[0]) + delta
                    if n_new:
                        yield from queue.publish(
                            ctx, st, res.new_counts, res.new_tokens
                        )
                    if n_done:
                        st.complete(np.flatnonzero(res.completed))
                        custom[K_TASKS_DONE] += n_done
                        custom[k_done] += n_done
                    if remaining == 0:
                        if probe is not None:
                            probe.wf_phase(ctx.wf_id, "termination")
                            probe.sched_done(probe.now, ctx.wf_id)
                        yield MemWrite(sched.buf_ctrl, DONE, 1)
                    elif remaining < 0:
                        raise RuntimeError(
                            "in-flight counter went negative: a task was "
                            "completed twice or never accounted"
                        )
        finally:
            custom[K_WORK_CYCLES] = custom.get(K_WORK_CYCLES, 0) + cycles
            custom[k_cycles] = custom.get(k_cycles, 0) + cycles
            custom[K_IDLE_CYCLES] = custom.get(K_IDLE_CYCLES, 0) + idle_lanes
            custom[k_idle] = custom.get(k_idle, 0) + idle_lanes

    return kernel

