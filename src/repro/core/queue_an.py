"""AN — arbitrary-n aggregation on top of a CAS-based queue (§5.3).

This ablation adds the paper's *arbitrary-n* property to BASE: hungry
lanes (resp. newly produced tokens) are counted with a wavefront-local
aggregation and the **proxy lane** moves ``Front`` (resp. ``Rear``) by the
whole batch with a single CAS.  What it deliberately lacks is the
*retry-free* property: the proxy's CAS can fail when another wavefront
got there first, forcing a re-read + retry round (counted in
``queue.cas_retry_rounds``), and dequeueing from an empty queue is still
an exception that leaves lanes hungry.

Comparing AN against BASE isolates the benefit of arbitrary-n; comparing
RF/AN against AN isolates the benefit of retry-free (Table 4, Figure 4).

Slot hand-off reuses BASE's per-slot valid flags.
"""

from __future__ import annotations

from typing import Generator

import numpy as np

from repro.simt import (
    Abort,
    AtomicKind,
    AtomicRMW,
    KernelContext,
    LocalOp,
    MemRead,
    MemWrite,
    Op,
)
from repro.simt.lanes import rank_within, segmented_rank

from .constants import FRONT, REAR
from .queue_api import (
    K_CAS_ROUNDS,
    K_DEQ_REQUESTS,
    K_DEQ_TOKENS,
    K_EMPTY_EXC,
    K_ENQ_TOKENS,
    K_PROXY_ATOMICS,
)
from .queue_base_cas import BaseCasQueue
from .state import WavefrontQueueState


class ArbitraryNQueue(BaseCasQueue):
    """Proxy-aggregated CAS queue (the paper's AN variant)."""

    variant = "AN"
    retry_free = False
    arbitrary_n = True

    # ------------------------------------------------------------------
    def acquire(
        self, ctx: KernelContext, st: WavefrontQueueState
    ) -> Generator[Op, Op, None]:
        stats = ctx.stats
        dev = ctx.device
        probe = self._probe(ctx)
        n = st.n_hungry
        if n == 0:
            return
        hungry = st.hungry_mask()
        stats.custom[K_DEQ_REQUESTS] += n
        if probe is not None:
            probe.wf_phase(ctx.wf_id, "reserve", self.prefix)
        ranks, _total = rank_within(hungry)
        yield LocalOp(dev.lds_op_cycles)  # local aggregation of hungry lanes

        first_round = True
        while True:
            ctrl = self._read_ctrl()
            yield ctrl
            front, rear = int(ctrl.result[0]), int(ctrl.result[1])
            if probe is not None:
                probe.queue_counter(self.prefix, "front", probe.now, front)
                probe.queue_counter(self.prefix, "rear", probe.now, rear)
            avail = rear - front
            m = min(n, avail)
            if m <= 0:
                # queue-empty exception: all hungry lanes stay hungry.
                stats.custom[K_EMPTY_EXC] += n
                if probe is not None:
                    probe.queue_instant(self.prefix, "empty", probe.now, n)
                return
            if not first_round:
                stats.custom[K_CAS_ROUNDS] += 1
            first_round = False
            # proxy claims m entries with one CAS; it can fail.
            op = AtomicRMW(
                self.buf_ctrl, FRONT, AtomicKind.CAS, front, front + m
            )
            yield op
            stats.custom[K_PROXY_ATOMICS] += 1
            if bool(op.success[0]):
                break
            # CAS failed: somebody moved Front; re-read and retry.
            if probe is not None:
                probe.queue_instant(self.prefix, "cas_retry", probe.now, 1)

        # first m hungry lanes receive slots front .. front+m-1.
        served = hungry & (ranks < m)
        lanes = np.flatnonzero(served)
        raw = front + ranks[served]
        phys = self._phys(raw)
        if probe is not None:
            probe.queue_proxy(self.prefix, "acquire", m)
            probe.queue_reserve(self.prefix, "acquire", front, m)
            probe.queue_watch(self.prefix, raw, probe.now)
            probe.wf_phase(ctx.wf_id, "dna_spin", self.prefix)

        while True:
            vread = MemRead(self.buf_valid, phys)
            yield vread
            if np.all(vread.result == 1):
                break
            stats.custom[K_CAS_ROUNDS] += 1
            if probe is not None:
                probe.queue_instant(
                    self.prefix, "handoff_spin", probe.now, int(lanes.size)
                )

        dread = MemRead(self.buf_data, phys)
        yield dread
        # probe events fire at the flag-clear's issue, strictly before a
        # wrap-around producer can see the slot released (oracle order).
        if probe is not None:
            probe.queue_grant(self.prefix, raw, probe.now)
            probe.queue_deliver(self.prefix, raw, dread.result)
        yield MemWrite(self.buf_valid, phys, 0)
        st.grant(lanes, dread.result)
        stats.custom[K_DEQ_TOKENS] += int(lanes.size)

    # ------------------------------------------------------------------
    def publish(
        self,
        ctx: KernelContext,
        st: WavefrontQueueState,
        counts: np.ndarray,
        tokens: np.ndarray,
    ) -> Generator[Op, Op, None]:
        stats = ctx.stats
        dev = ctx.device
        probe = self._probe(ctx)
        counts = np.asarray(counts, dtype=np.int64)
        has_new = counts > 0
        if not has_new.any():
            return
        if probe is not None:
            probe.wf_phase(ctx.wf_id, "reserve", self.prefix)
        ranks, total = segmented_rank(has_new, counts)
        yield LocalOp(dev.lds_op_cycles)

        first_round = True
        while True:
            ctrl = self._read_ctrl()
            yield ctrl
            front, rear = int(ctrl.result[0]), int(ctrl.result[1])
            if probe is not None:
                probe.queue_counter(self.prefix, "front", probe.now, front)
                probe.queue_counter(self.prefix, "rear", probe.now, rear)
            if self._is_full(front, rear, total):
                yield Abort(
                    f"queue full: queue {self.prefix!r} fill "
                    f"{rear - front}/{self.capacity} (rear={rear} "
                    f"front={front} need={total})",
                    info={
                        "queue": self.prefix,
                        "capacity": self.capacity,
                        "fill": rear - front,
                    },
                )
            if not first_round:
                stats.custom[K_CAS_ROUNDS] += 1
            first_round = False
            op = AtomicRMW(
                self.buf_ctrl, REAR, AtomicKind.CAS, rear, rear + total
            )
            yield op
            stats.custom[K_PROXY_ATOMICS] += 1
            if bool(op.success[0]):
                break
            if probe is not None:
                probe.queue_instant(self.prefix, "cas_retry", probe.now, 1)

        if probe is not None:
            probe.queue_counter(self.prefix, "rear", probe.now, rear + total)
            probe.queue_proxy(self.prefix, "publish", total)
            probe.queue_reserve(self.prefix, "publish", rear, total)

        lane_base = rear + ranks
        max_count = int(counts.max())
        for t in range(max_count):
            active = counts > t
            raw = lane_base[active] + t
            phys = self._phys(raw)
            if self.circular:
                if probe is not None:
                    probe.wf_phase(ctx.wf_id, "full_wait", self.prefix)
                while True:
                    vread = MemRead(self.buf_valid, phys)
                    yield vread
                    if np.all(vread.result == 0):
                        break
                    stats.custom[K_CAS_ROUNDS] += 1
                if probe is not None:
                    probe.wf_phase(ctx.wf_id, "reserve", self.prefix)
            if probe is not None:
                probe.queue_store(self.prefix, raw, tokens[active, t])
            yield MemWrite(self.buf_data, phys, tokens[active, t])
            yield MemWrite(self.buf_valid, phys, 1)
        stats.custom[K_ENQ_TOKENS] += int(total)
