"""Per-wavefront lane state shared by every queue variant.

Each persistent wavefront owns one :class:`WavefrontQueueState`: the
private registers of its lanes as far as the scheduler is concerned.  The
queue variants mutate it through a uniform contract so the same driver
kernel (e.g. the BFS in :mod:`repro.bfs.persistent`) runs unchanged on
BASE, AN, and RF/AN:

* a lane *wants* work while it holds no token (``~has_token``);
* once a variant hands it a token, :attr:`has_token` is set and
  :attr:`token` holds the task id;
* a lane may instead be parked on a :attr:`slot` — RF/AN's monitored
  dequeue slot (the refactored queue-empty exception of §4.2) or BASE's
  claimed-but-not-yet-valid slot; ``-1`` means not parked.

The integer mirrors :attr:`n_token` / :attr:`n_watching` exist because
persistent kernels evaluate "is anyone busy?" every work cycle; keeping
them as Python ints avoids a NumPy reduction in the simulator's hottest
loop.  All mutations must go through :meth:`grant`, :meth:`complete`,
:meth:`watch` and :meth:`unwatch`, which keep the mirrors (and the
cached watch-set, :attr:`cache`) consistent.
"""

from __future__ import annotations

import numpy as np

from .constants import DNA


class WavefrontQueueState:
    """Lane-private scheduler registers for one wavefront."""

    __slots__ = ("wavefront_size", "needs_work", "has_token", "token",
                 "slot", "n_token", "n_watching", "cache")

    def __init__(self, wavefront_size: int):
        if wavefront_size <= 0:
            raise ValueError(
                f"wavefront_size must be positive, got {wavefront_size}"
            )
        #: number of lanes (plain int: read every work cycle).
        self.wavefront_size = wavefront_size
        #: lane wants a task assigned (kept in lockstep with ~has_token).
        self.needs_work = np.ones(wavefront_size, dtype=bool)
        #: lane currently holds a task token.
        self.has_token = np.zeros(wavefront_size, dtype=bool)
        #: the held task token (valid where has_token).
        self.token = np.full(wavefront_size, DNA, dtype=np.int64)
        #: parked slot (raw index), -1 when not parked.
        self.slot = np.full(wavefront_size, -1, dtype=np.int64)
        #: number of lanes with has_token set.
        self.n_token = 0
        #: number of lanes parked on a slot.
        self.n_watching = 0
        #: queue-variant scratch (e.g. RF/AN's cached watch arrays);
        #: invalidated on every watch/unwatch.
        self.cache = None

    def grant(self, lanes: np.ndarray, tokens: np.ndarray) -> None:
        """Hand tokens to lanes (index array + aligned token vector)."""
        self.token[lanes] = tokens
        self.has_token[lanes] = True
        self.needs_work[lanes] = False
        self.n_token += int(np.size(lanes))

    def complete(self, lanes: np.ndarray) -> None:
        """Mark lanes' tasks finished; they become hungry again."""
        self.has_token[lanes] = False
        self.token[lanes] = DNA
        self.needs_work[lanes] = True
        self.n_token -= int(np.size(lanes))

    def watch(self, lanes: np.ndarray, raws: np.ndarray) -> None:
        """Park lanes on queue slots."""
        self.slot[lanes] = raws
        self.n_watching += int(np.size(lanes))
        self.cache = None

    def unwatch(self, lanes: np.ndarray) -> None:
        """Release lanes' parked slots."""
        self.slot[lanes] = -1
        self.n_watching -= int(np.size(lanes))
        self.cache = None

    def hungry_mask(self) -> np.ndarray:
        """Lanes that want work and are not already parked on a slot."""
        return ~self.has_token & (self.slot < 0)

    @property
    def n_hungry(self) -> int:
        """Lanes wanting work and not parked (O(1))."""
        return self.wavefront_size - self.n_token - self.n_watching

    def check_invariants(self) -> None:
        """Debug aid: mirrors and masks must agree; no contradictions."""
        if np.any(self.has_token & self.needs_work):
            raise AssertionError("lane both holds a token and needs work")
        if np.any(self.has_token & (self.token < 0)):
            raise AssertionError("has_token lane with invalid token")
        if self.n_token != int(self.has_token.sum()):
            raise AssertionError("n_token mirror out of sync")
        if self.n_watching != int((self.slot >= 0).sum()):
            raise AssertionError("n_watching mirror out of sync")
        if np.any(self.has_token & (self.slot >= 0)):
            raise AssertionError("lane holds a token while parked on a slot")
