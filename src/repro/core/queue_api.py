"""Abstract interface shared by the three concurrent-queue variants.

A :class:`DeviceQueue` is a *device-resident* data structure: its state
lives entirely in :class:`~repro.simt.memory.GlobalMemory` buffers
(statically allocated, per the GPU constraint in §3.1 of the paper), and
its operations are generator methods that kernels drive with
``yield from``.  The Python object itself holds only immutable
configuration (capacity, buffer names) — it is the *code* of the queue,
not its data, so one object can serve any number of concurrent simulated
wavefronts.

The contract seen by the persistent-thread scheduler:

``acquire(ctx, st)``
    Try to obtain task tokens for hungry lanes of ``st``.  Variants
    differ in *how* (and in how much contention they cause):

    * BASE — every hungry lane runs its own CAS loop on ``Front``;
      queue-empty is an exception that leaves the lane hungry.
    * AN — the proxy lane claims ``n`` entries with one CAS loop.
    * RF/AN — the proxy lane claims ``n`` *slots* with one non-failing
      fetch-add; lanes then monitor their private slot for data arrival
      (no retries of any kind).

``publish(ctx, st, counts, tokens)``
    Enqueue newly discovered tokens: lane *i* contributes
    ``tokens[i, :counts[i]]``.

Statistics land in ``ctx.stats.custom`` under ``queue.*`` keys so the
harness can compute the paper's retry metrics (Figures 1 and 5).
"""

from __future__ import annotations

import abc
from typing import Generator, Iterable, Optional

import numpy as np

from repro.simt import GlobalMemory, KernelContext, MemRead, Op
from repro.simt.memory import MemoryFault

from .constants import DNA, FRONT, REAR
from .state import WavefrontQueueState

# custom-counter keys (shared across variants so reports line up)
K_DEQ_REQUESTS = "queue.dequeue_requests"      # lanes that asked for work
K_DEQ_TOKENS = "queue.dequeued_tokens"         # tokens handed out
K_ENQ_TOKENS = "queue.enqueued_tokens"         # tokens stored
K_EMPTY_EXC = "queue.empty_exceptions"         # queue-empty retry events
K_CAS_ROUNDS = "queue.cas_retry_rounds"        # extra CAS loop iterations
K_PROXY_ATOMICS = "queue.proxy_atomics"        # aggregated global atomics
K_ARRIVAL_CHECKS = "queue.arrival_checks"      # RF/AN slot polls


class QueueFull(Exception):
    """Host-visible queue-full abort (paper footnote 2: not retryable)."""


class DeviceQueue(abc.ABC):
    """Configuration + kernel-side code of one bounded concurrent queue.

    Parameters
    ----------
    capacity:
        Number of task-token slots.  The paper's BFS sizes the queue for
        the whole problem; undersizing aborts the kernel with queue-full.
    prefix:
        Buffer-name prefix, so several queues can coexist in one memory.
    circular:
        If True, raw indices wrap (``physical = raw % capacity``) and the
        structure is reusable indefinitely provided ``capacity`` exceeds
        the maximum number of in-flight plus monitored entries.  If False
        (the paper's BFS configuration), indices are monotonic and a slot
        index beyond ``capacity`` simply never receives data (Listing 2's
        bound check).
    """

    #: short variant id used in tables ("BASE", "AN", "RF/AN").
    variant: str = "?"
    #: whether the variant has the retry-free property.
    retry_free: bool = False
    #: whether the variant has the arbitrary-n property.
    arbitrary_n: bool = False

    def __init__(self, capacity: int, prefix: str = "wq", circular: bool = False):
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.capacity = int(capacity)
        self.prefix = prefix
        self.circular = bool(circular)
        self.buf_data = f"{prefix}.data"
        self.buf_ctrl = f"{prefix}.ctrl"

    # ------------------------------------------------------------------
    # host side
    # ------------------------------------------------------------------
    def allocate(self, memory: GlobalMemory) -> None:
        """Statically allocate the queue's buffers (before kernel launch).

        The slot array is marked L2-resident: its active window (the
        slots around Front/Rear) is re-read by every hungry thread every
        work cycle, the most heavily re-referenced data in the kernel.
        """
        memory.alloc(self.buf_data, self.capacity, fill=DNA)
        memory.mark_hot(self.buf_data)
        memory.alloc(self.buf_ctrl, 2, fill=0)

    def seed(self, memory: GlobalMemory, tokens: Iterable[int]) -> int:
        """Host-side enqueue of the initial ready tasks.

        Returns the number of tokens seeded.  Mirrors the host writing the
        source vertex before launching the BFS kernel.
        """
        toks = np.asarray(list(tokens), dtype=np.int64)
        if toks.size > self.capacity:
            raise QueueFull(
                f"{toks.size} seed tokens exceed capacity {self.capacity}"
            )
        if np.any(toks < 0):
            raise ValueError("task tokens must be non-negative")
        data = memory[self.buf_data]
        ctrl = memory[self.buf_ctrl]
        rear = int(ctrl[REAR])
        for i, t in enumerate(toks):
            data[self._phys(rear + i)] = t
        ctrl[REAR] = rear + toks.size
        self._host_mark_valid(memory, rear, toks.size)
        return int(toks.size)

    def _host_mark_valid(self, memory: GlobalMemory, start: int, n: int) -> None:
        """Hook for variants with per-slot valid flags (BASE/AN)."""

    def drain_host(self, memory: GlobalMemory) -> np.ndarray:
        """Read all stored-but-unconsumed tokens (host-side debugging)."""
        ctrl = memory[self.buf_ctrl]
        data = memory[self.buf_data]
        front, rear = int(ctrl[FRONT]), int(ctrl[REAR])
        out = []
        for raw in range(front, rear):
            v = data[self._phys(raw)]
            if v != DNA:
                out.append(int(v))
        return np.asarray(out, dtype=np.int64)

    # ------------------------------------------------------------------
    # shared helpers
    # ------------------------------------------------------------------
    def _phys(self, raw) -> np.ndarray | int:
        """Map raw (monotonic) indices to physical slots."""
        if self.circular:
            return raw % self.capacity
        return raw

    def _in_bounds(self, raw: np.ndarray) -> np.ndarray:
        """Which raw indices address real storage (Listing 2 line 3)."""
        if self.circular:
            return np.ones(raw.shape, dtype=bool)
        return raw < self.capacity

    # ------------------------------------------------------------------
    # kernel side
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def acquire(
        self, ctx: KernelContext, st: WavefrontQueueState
    ) -> Generator[Op, Op, None]:
        """Obtain tokens for hungry lanes (variant-specific protocol)."""

    @abc.abstractmethod
    def publish(
        self,
        ctx: KernelContext,
        st: WavefrontQueueState,
        counts: np.ndarray,
        tokens: np.ndarray,
    ) -> Generator[Op, Op, None]:
        """Enqueue ``tokens[i, :counts[i]]`` for every lane ``i``."""

    # convenience for subclasses -----------------------------------------
    def _read_ctrl(self) -> MemRead:
        """One coalesced read of (Front, Rear)."""
        return MemRead(self.buf_ctrl, np.array([FRONT, REAR], dtype=np.int64))

    def _probe(self, ctx: KernelContext) -> Optional[object]:
        """The launch's observability probe (None almost always).

        Registers this queue on first sight so exporters know its
        capacity/variant.  Probes are passive: nothing on this path may
        touch stats, memory, or op scheduling.
        """
        probe = ctx.probe
        if probe is not None:
            probe.queue_register(self.prefix, self.capacity, self.variant)
        return probe

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"{type(self).__name__}(capacity={self.capacity}, "
            f"prefix={self.prefix!r}, circular={self.circular})"
        )
