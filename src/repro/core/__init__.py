"""The paper's contribution: concurrent queues + persistent-thread scheduler.

Three queue variants (§5.3), one interface:

========  ===========  ============  =======================================
Variant   retry-free   arbitrary-n   Class
========  ===========  ============  =======================================
BASE      no           no            :class:`~repro.core.queue_base_cas.BaseCasQueue`
AN        no           yes           :class:`~repro.core.queue_an.ArbitraryNQueue`
RF/AN     yes          yes           :class:`~repro.core.queue_rfan.RetryFreeQueue`
========  ===========  ============  =======================================

Use :func:`make_queue` to construct one by name, and
:func:`~repro.core.scheduler.persistent_kernel` to drive it under the
persistent-thread model.

Two *adaptive-capacity* variants layer graceful overflow handling over
the RF/AN protocol (:mod:`repro.core.queue_adaptive`): ``GROW`` chains
recycled fixed-size segments behind a write-once segment map, and
``SPILL`` dead-drops overflowing publishes into a side ring that a
drain pump re-publishes under backpressure.  Both deliver the same
token multisets as the bare variants — they just stop aborting on
fill excursions (see ``docs/capacity.md``).
"""

from __future__ import annotations

from typing import Dict, Type

from .constants import DEFAULT_SUBTASKS_PER_CYCLE, DNA, DONE, FRONT, PENDING, REAR
from .host import (
    CasConsumer,
    CasProducer,
    HostCasQueue,
    HostRFANQueue,
    RFANConsumer,
    RFANProducer,
)
from .queue_adaptive import GrowQueue, SpillQueue
from .queue_an import ArbitraryNQueue
from .queue_api import DeviceQueue, QueueFull
from .queue_base_cas import BaseCasQueue
from .queue_rfan import RetryFreeQueue
from .queue_sharded import ShardedQueue
from .scheduler import (
    SchedulerControl,
    WorkCycleResult,
    Worker,
    persistent_kernel,
    sharded_persistent_kernel,
)
from .state import WavefrontQueueState

#: queue variants by their table name.
QUEUE_VARIANTS: Dict[str, Type[DeviceQueue]] = {
    "BASE": BaseCasQueue,
    "AN": ArbitraryNQueue,
    "RF/AN": RetryFreeQueue,
    "GROW": GrowQueue,
    "SPILL": SpillQueue,
}


def make_queue(
    variant: str, capacity: int, prefix: str = "wq", circular: bool = False
) -> DeviceQueue:
    """Construct a queue variant by its name in the paper's tables."""
    try:
        cls = QUEUE_VARIANTS[variant]
    except KeyError:
        raise ValueError(
            f"unknown queue variant {variant!r}; expected one of "
            f"{sorted(QUEUE_VARIANTS)}"
        ) from None
    return cls(capacity, prefix=prefix, circular=circular)


__all__ = [
    "ArbitraryNQueue",
    "BaseCasQueue",
    "CasConsumer",
    "CasProducer",
    "DEFAULT_SUBTASKS_PER_CYCLE",
    "DNA",
    "DONE",
    "DeviceQueue",
    "FRONT",
    "GrowQueue",
    "HostCasQueue",
    "HostRFANQueue",
    "PENDING",
    "QUEUE_VARIANTS",
    "QueueFull",
    "REAR",
    "RFANConsumer",
    "RFANProducer",
    "RetryFreeQueue",
    "SchedulerControl",
    "ShardedQueue",
    "SpillQueue",
    "WavefrontQueueState",
    "WorkCycleResult",
    "Worker",
    "make_queue",
    "persistent_kernel",
    "sharded_persistent_kernel",
]
