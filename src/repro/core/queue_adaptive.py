"""Adaptive-capacity RF/AN variants: GROW and SPILL (graceful capacity).

The paper's queues treat capacity as a host planning decision: running
out aborts the kernel (Listing 3 line 25, §4.3).  A scheduler serving
real traffic cannot afford that, so this module layers two graceful
capacity modes over the RF/AN reservation protocol without touching its
retry-free core — Front/Rear still advance by single never-failing
fetch-adds, lanes still park on private slots, and no queue operation is
ever retried.

:class:`GrowQueue` (variant ``GROW``)
    A segment-chained buffer in the style of segment-recycling bounded
    queues (Aksenov et al., "Memory Bounds for Concurrent Bounded
    Queues").  The logical index space is unbounded; physical storage is
    a statically allocated pool of fixed-size segments (GPUs cannot
    malloc mid-kernel, §3.1).  A write-once *segment map* translates
    logical segments to pool segments.  When Rear crosses into an
    unmapped logical segment, the publishing wavefront claims a free
    pool segment and installs it with a **single never-retried CAS**:
    losing the race is not an error — the loser adopts the winner's
    mapping straight from the CAS result and returns its claimed segment
    to the free list.  Consumers recycle: once every slot of a logical
    segment has been delivered (tracked by one batched fetch-add on a
    per-segment drain counter), the pool segment is released for reuse,
    so steady-state memory stays bounded by the pool while total
    throughput is unbounded.

:class:`SpillQueue` (variant ``SPILL``)
    Backpressure over a circular RF/AN ring.  A producer whose batch
    would push the ring past a high-water mark does not abort — and
    does not take the Rear reservation it normally would: it
    *dead-drops* the batch's tokens into a side overflow ring and moves
    on.  A *drain pump*, run from ``acquire`` (which the persistent
    scheduler calls every work cycle), re-publishes spilled tokens
    through the ordinary Rear path once the ring's fill estimate falls
    below a low-water mark, in FIFO order under a pump lock.  Dropping
    the *reservation* (not just the store) is what keeps the ring
    sound: every Rear slot is still filled promptly, so no watcher can
    be parked on an empty slot long enough for a second watcher to wrap
    onto the same physical slot (the §4.2 constraint).  Degrade-don't-
    die is the cooperative-kernels posture (Sorensen et al.):
    oversubscription costs latency, not the kernel.

Both variants surface their activity through ``queue.grow.*`` /
``queue.spill.*`` stat counters and the probe callbacks
``queue_segment_link`` / ``queue_segment_release`` / ``queue_spill`` /
``queue_reinject``, which the verification oracle uses to check segment
hand-off and spill/re-inject legality (see ``repro.verify.oracle``).
"""

from __future__ import annotations

from typing import Generator, Iterable, List, Tuple

import numpy as np

from repro.simt import (
    Abort,
    AtomicKind,
    AtomicRMW,
    GlobalMemory,
    KernelContext,
    LocalOp,
    MemRead,
    MemWrite,
    Op,
)
from repro.simt.engine import transactions_for
from repro.simt.lanes import segmented_rank

from .constants import DNA, FRONT, REAR
from .queue_api import (
    K_ARRIVAL_CHECKS,
    K_DEQ_TOKENS,
    K_ENQ_TOKENS,
    K_PROXY_ATOMICS,
    QueueFull,
)
from .queue_rfan import RetryFreeQueue
from .state import WavefrontQueueState

# adaptive-capacity counters (reported next to the queue.* family)
K_GROW_LINKS = "queue.grow.segment_links"        # segment-map CAS wins
K_GROW_LINK_LOSSES = "queue.grow.link_losses"    # CAS losses (adopted winner)
K_GROW_RELEASES = "queue.grow.segment_releases"  # drained segments recycled
K_GROW_PEAK_LIVE = "queue.grow.peak_live_segments"
K_SPILL_TOKENS = "queue.spill.tokens"            # dead-dropped enqueues
K_SPILL_REINJECTED = "queue.spill.reinjected"    # re-published by the pump
K_SPILL_PUMP_RUNS = "queue.spill.pump_runs"      # pump lock acquisitions
K_SPILL_PEAK_DEPTH = "queue.spill.peak_depth"    # overflow-ring high water

# spill-ring control words
SP_HEAD = 0
SP_TAIL = 1
SP_LOCK = 2


class GrowQueue(RetryFreeQueue):
    """Segment-chained RF/AN queue with a recycling free-list.

    Parameters
    ----------
    capacity:
        Physical pool size in slots (the memory footprint), rounded up
        to a whole number of segments.  Unlike the bare variants this is
        *not* a throughput limit: logical indices run to
        ``max_segments * seg_cap``.
    seg_cap:
        Slots per segment (default: ``capacity // pool_segments``).
    pool_segments:
        Number of pool segments when ``seg_cap`` is not given.
    max_segments:
        Logical segment-map length; a generous default bounds the map
        buffer without practically limiting throughput.
    """

    variant = "GROW"
    growable = True

    def __init__(
        self,
        capacity: int,
        prefix: str = "wq",
        circular: bool = False,
        *,
        seg_cap: int | None = None,
        pool_segments: int = 4,
        max_segments: int | None = None,
    ):
        if circular:
            raise ValueError(
                "GROW is monotonic by construction (recycling replaces "
                "wrap-around); circular=True is not supported"
            )
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        if seg_cap is None:
            if pool_segments <= 0:
                raise ValueError("pool_segments must be positive")
            seg_cap = max(1, -(-capacity // pool_segments))
        else:
            if seg_cap <= 0:
                raise ValueError("seg_cap must be positive")
            pool_segments = max(1, -(-capacity // seg_cap))
        super().__init__(seg_cap * pool_segments, prefix, circular=False)
        self.seg_cap = int(seg_cap)
        self.pool_segments = int(pool_segments)
        if max_segments is None:
            max_segments = max(64, self.pool_segments * 64)
        if max_segments < self.pool_segments:
            raise ValueError("max_segments must cover the pool")
        self.max_segments = int(max_segments)
        #: logical index space — the oracle bounds stores by this, not
        #: by the physical pool size.
        self.logical_capacity = self.max_segments * self.seg_cap
        self.buf_segmap = f"{prefix}.segmap"
        self.buf_segstate = f"{prefix}.segstate"
        self.buf_segdrain = f"{prefix}.segdrain"
        self._wf_segmap: dict = {}
        self._host_mapped: List[Tuple[int, int]] = [(0, 0)]
        self._live_segments = 1
        self._peak_live = 1
        idx = np.arange(self.pool_segments, dtype=np.int64)
        idx.setflags(write=False)
        self._segstate_idx = idx
        self._segstate_trans = transactions_for(idx)

    # ------------------------------------------------------------------
    # host side
    # ------------------------------------------------------------------
    def allocate(self, memory: GlobalMemory) -> None:
        memory.alloc(self.buf_data, self.capacity, fill=DNA)
        memory.mark_hot(self.buf_data)
        memory.alloc(self.buf_ctrl, 2, fill=0)
        memory.alloc(self.buf_segmap, self.max_segments, fill=-1)
        memory.mark_hot(self.buf_segmap)
        memory.alloc(self.buf_segstate, self.pool_segments, fill=0)
        memory.alloc(self.buf_segdrain, self.max_segments, fill=0)
        # logical segment 0 is pre-mapped so seeding and the first
        # enqueue need no device-side link.
        memory[self.buf_segmap][0] = 0
        memory[self.buf_segstate][0] = 1
        self._wf_segmap.clear()
        self._host_mapped = [(0, 0)]
        self._live_segments = 1
        self._peak_live = 1

    def _host_map(self, memory: GlobalMemory, logical: int) -> int:
        """Host-side segment link for seeding (mirrors the device CAS)."""
        segmap = memory[self.buf_segmap]
        if segmap[logical] >= 0:
            return int(segmap[logical])
        segstate = memory[self.buf_segstate]
        free = np.flatnonzero(np.asarray(segstate) == 0)
        if free.size == 0:
            raise QueueFull(
                f"seed overflows the segment pool "
                f"({self.pool_segments} x {self.seg_cap} slots)"
            )
        phys = int(free[0])
        segstate[phys] = 1
        segmap[logical] = phys
        self._host_mapped.append((logical, phys))
        self._live_segments += 1
        self._peak_live = max(self._peak_live, self._live_segments)
        return phys

    def seed(self, memory: GlobalMemory, tokens: Iterable[int]) -> int:
        toks = np.asarray(list(tokens), dtype=np.int64)
        if toks.size > self.capacity:
            raise QueueFull(
                f"{toks.size} seed tokens exceed pool capacity "
                f"{self.capacity}"
            )
        if np.any(toks < 0):
            raise ValueError("task tokens must be non-negative")
        data = memory[self.buf_data]
        ctrl = memory[self.buf_ctrl]
        segmap = memory[self.buf_segmap]
        rear = int(ctrl[REAR])
        for i, t in enumerate(toks):
            raw = rear + i
            seg, off = divmod(raw, self.seg_cap)
            self._host_map(memory, seg)
            data[int(segmap[seg]) * self.seg_cap + off] = t
        ctrl[REAR] = rear + toks.size
        return int(toks.size)

    def drain_host(self, memory: GlobalMemory) -> np.ndarray:
        ctrl = memory[self.buf_ctrl]
        data = memory[self.buf_data]
        segmap = memory[self.buf_segmap]
        front, rear = int(ctrl[FRONT]), int(ctrl[REAR])
        out = []
        for raw in range(front, rear):
            seg, off = divmod(raw, self.seg_cap)
            phys_seg = int(segmap[seg])
            if phys_seg < 0:
                continue
            v = data[phys_seg * self.seg_cap + off]
            if v != DNA:
                out.append(int(v))
        return np.asarray(out, dtype=np.int64)

    # ------------------------------------------------------------------
    # shared helpers
    # ------------------------------------------------------------------
    def _in_bounds(self, raw: np.ndarray) -> np.ndarray:
        # bounded by the logical index space, not the physical pool.
        return raw < self.logical_capacity

    def _segcache(self, wf_id: int) -> np.ndarray:
        cache = self._wf_segmap.get(wf_id)
        if cache is None:
            cache = np.full(self.max_segments, -1, dtype=np.int64)
            for logical, phys in self._host_mapped:
                cache[logical] = phys
            self._wf_segmap[wf_id] = cache
        return cache

    def _note_link(self) -> None:
        self._live_segments += 1
        self._peak_live = max(self._peak_live, self._live_segments)

    # ------------------------------------------------------------------
    # kernel side: segment plumbing
    # ------------------------------------------------------------------
    def _claim_free_segment(
        self, ctx: KernelContext
    ) -> Generator[Op, Op, int]:
        """Pop one free pool segment (scan + CAS, bounded tries).

        This is a free-list pop, not a queue operation: the RF/AN
        retry-free property concerns Front/Rear arbitration and is
        untouched.  The scan is bounded; a pool with no free segment is
        a *graceful* queue-full — consumption has not kept up with the
        pool size, which remains a host planning decision.
        """
        for _ in range(self.pool_segments):
            scan = MemRead(
                self.buf_segstate,
                self._segstate_idx,
                trans=self._segstate_trans,
                prechecked=True,
            )
            yield scan
            free = np.flatnonzero(scan.result == 0)
            if free.size == 0:
                yield Abort(
                    f"queue full: queue {self.prefix!r} segment pool "
                    f"exhausted ({self.pool_segments} segments x "
                    f"{self.seg_cap} slots live, none drained)",
                    info={
                        "queue": self.prefix,
                        "capacity": self.capacity,
                        "fill": self.capacity,
                    },
                )
            claim = AtomicRMW(
                self.buf_segstate, int(free[0]), AtomicKind.CAS, 0, 1
            )
            yield claim
            if bool(claim.success[0]):
                return int(free[0])
        yield Abort(
            f"queue full: queue {self.prefix!r} segment pool contended "
            f"out ({self.pool_segments} claim rounds lost)",
            info={
                "queue": self.prefix,
                "capacity": self.capacity,
                "fill": self.capacity,
            },
        )
        raise AssertionError("unreachable")  # pragma: no cover

    def _link_segments(
        self,
        ctx: KernelContext,
        segcache: np.ndarray,
        first_seg: int,
        last_seg: int,
    ) -> Generator[Op, Op, None]:
        """Ensure logical segments ``first..last`` are mapped.

        The link itself is one CAS that is *never retried*: on a loss
        the winner's mapping rides back on the CAS result (``op.old``)
        and the loser's claimed pool segment goes straight back to the
        free list.
        """
        custom = ctx.stats.custom
        probe = ctx.probe
        if last_seg >= self.max_segments:
            yield Abort(
                f"queue full: queue {self.prefix!r} segment map exhausted "
                f"(logical segment {last_seg} >= max_segments "
                f"{self.max_segments})",
                info={
                    "queue": self.prefix,
                    "capacity": self.logical_capacity,
                    "fill": last_seg * self.seg_cap,
                },
            )
        unknown = [
            s for s in range(first_seg, last_seg + 1) if segcache[s] < 0
        ]
        if not unknown:
            return
        # refresh this wavefront's view first: another wavefront may
        # have linked these segments already.
        idx = np.asarray(unknown, dtype=np.int64)
        look = MemRead(self.buf_segmap, idx)
        yield look
        segcache[idx] = look.result
        for s in unknown:
            if segcache[s] >= 0:
                continue
            phys = yield from self._claim_free_segment(ctx)
            link = AtomicRMW(self.buf_segmap, s, AtomicKind.CAS, -1, phys)
            yield link
            if bool(link.success[0]):
                segcache[s] = phys
                custom[K_GROW_LINKS] += 1
                self._note_link()
                custom[K_GROW_PEAK_LIVE] = self._peak_live
                if probe is not None:
                    probe.queue_segment_link(self.prefix, s, phys, probe.now)
            else:
                # lost the race: adopt the winner's mapping from the CAS
                # result and return our claimed segment to the pool.
                segcache[s] = int(link.old[0])
                custom[K_GROW_LINK_LOSSES] += 1
                yield MemWrite(self.buf_segstate, phys, 0)

    def _translate(self, segcache: np.ndarray, raw: np.ndarray) -> np.ndarray:
        seg, off = np.divmod(raw, self.seg_cap)
        return segcache[seg] * self.seg_cap + off

    # ------------------------------------------------------------------
    # kernel side: the RF/AN protocol over segmented storage
    # ------------------------------------------------------------------
    def acquire(
        self, ctx: KernelContext, st: WavefrontQueueState
    ) -> Generator[Op, Op, None]:
        custom = ctx.stats.custom
        probe = ctx.probe
        if probe is not None:
            probe.queue_register(self.prefix, self.capacity, self.variant)

        # --- slot reservation: identical to RF/AN ----------------------
        n_hungry = st.wavefront_size - st.n_token - st.n_watching
        if n_hungry:
            yield from self._reserve_hungry(ctx, st, n_hungry)

        if st.n_watching == 0:
            return
        segcache = self._segcache(ctx.wf_id)

        # --- data-arrival poll over the segment map --------------------
        # Watched slots fall in two classes: *mapped* (their logical
        # segment is linked in this wavefront's cached map — poll the
        # translated physical slot exactly like RF/AN) and *unmapped*
        # (the producer has not linked the segment yet — poll the
        # segment-map words instead; a non-negative value there means
        # the segment just got linked and the poll set must be rebuilt).
        # Both polls are cached prechecked reads: the engine elides the
        # re-sample unless a store (or the link CAS — atomics bump the
        # write epoch too) touched the polled words.
        while True:
            cache = st.cache
            if cache is None:
                cache = self._build_poll_cache(st, segcache)
                st.cache = cache
            lanes, phys, read, n_mapped, seg_read, seg_idx = cache
            progressed = False
            if seg_read is not None:
                yield seg_read
                if seg_read.fresh:
                    linked = seg_read.result >= 0
                    if linked.any():
                        segcache[seg_idx[linked]] = seg_read.result[linked]
                        st.cache = None
                        progressed = True
            if progressed:
                continue
            if n_mapped == 0:
                # nothing watchable is mapped yet (or all watched slots
                # are beyond the logical bound during wind-down).
                return
            if probe is not None:
                probe.wf_phase(ctx.wf_id, "dna_spin", self.prefix)
            yield read
            custom[K_ARRIVAL_CHECKS] += n_mapped
            if not read.fresh:
                if probe is not None:
                    probe.queue_instant(
                        self.prefix, "empty_poll", probe.now, n_mapped
                    )
                return
            res = read.result
            if int(res.max()) == DNA:
                if probe is not None:
                    probe.queue_instant(
                        self.prefix, "empty_poll", probe.now, n_mapped
                    )
                return
            arrived = res != DNA
            got_lanes = lanes[arrived]
            tokens = res[arrived]
            raw_got = st.slot[got_lanes]
            if probe is not None:
                probe.queue_grant(self.prefix, raw_got, probe.now)
                probe.queue_deliver(self.prefix, raw_got, tokens)
            yield MemWrite(self.buf_data, phys[arrived], DNA)
            st.unwatch(got_lanes)
            st.grant(got_lanes, tokens)
            custom[K_DEQ_TOKENS] += int(got_lanes.size)
            yield from self._recycle(ctx, segcache, raw_got)
            return

    def _reserve_hungry(
        self, ctx: KernelContext, st: WavefrontQueueState, n_hungry: int
    ) -> Generator[Op, Op, None]:
        """Listing 1 verbatim (shared with RF/AN): one AFA on Front."""
        from repro.simt.lanes import rank_within

        from .queue_api import K_DEQ_REQUESTS

        custom = ctx.stats.custom
        probe = ctx.probe
        hungry = st.hungry_mask()
        custom[K_DEQ_REQUESTS] += n_hungry
        if probe is not None:
            probe.wf_phase(ctx.wf_id, "reserve", self.prefix)
        ranks, total = rank_within(hungry)
        yield LocalOp(ctx.device.lds_op_cycles)
        op = AtomicRMW(self.buf_ctrl, FRONT, AtomicKind.ADD, total)
        yield op
        custom[K_PROXY_ATOMICS] += 1
        base = int(op.old[0])
        lanes = np.flatnonzero(hungry)
        st.watch(lanes, base + ranks[lanes])
        if probe is not None:
            probe.queue_counter(self.prefix, "front", probe.now, base + total)
            probe.queue_proxy(self.prefix, "acquire", total)
            probe.queue_reserve(self.prefix, "acquire", base, total)
            probe.queue_watch(self.prefix, base + ranks[lanes], probe.now)

    def _build_poll_cache(
        self, st: WavefrontQueueState, segcache: np.ndarray
    ) -> tuple:
        watching = st.slot >= 0
        raw = st.slot[watching]
        inb = self._in_bounds(raw)
        all_lanes = np.flatnonzero(watching)[inb]
        raw = raw[inb]
        segs = raw // self.seg_cap
        mapped = segcache[segs] >= 0
        lanes = all_lanes[mapped]
        phys = np.asarray(
            self._translate(segcache, raw[mapped]), dtype=np.int64
        )
        phys.setflags(write=False)
        trans = transactions_for(phys) if phys.size else 0
        read = MemRead(self.buf_data, phys, trans=trans, prechecked=True)
        seg_read = None
        seg_idx = None
        if (~mapped).any():
            seg_idx = np.unique(segs[~mapped])
            seg_idx.setflags(write=False)
            seg_read = MemRead(
                self.buf_segmap,
                seg_idx,
                trans=transactions_for(seg_idx),
                prechecked=True,
            )
        return (lanes, phys, read, int(lanes.size), seg_read, seg_idx)

    def _recycle(
        self, ctx: KernelContext, segcache: np.ndarray, raw_got: np.ndarray
    ) -> Generator[Op, Op, None]:
        """Account deliveries per segment; release fully drained ones.

        One batched fetch-add covers every distinct segment in the
        arrival batch (array-index atomics are the arbitrary-n idiom).
        A segment whose drain counter reaches ``seg_cap`` is quiescent:
        the release write is ordered after this wavefront's sentinel
        restore (program order), and the drain AFAs of *other* consumers
        are ordered after theirs — so a later claimant can only see a
        fully restored segment.
        """
        custom = ctx.stats.custom
        probe = ctx.probe
        segs, counts = np.unique(raw_got // self.seg_cap, return_counts=True)
        drain = AtomicRMW(
            self.buf_segdrain, segs, AtomicKind.ADD, counts.astype(np.int64)
        )
        yield drain
        done = drain.old + counts == self.seg_cap
        if not done.any():
            return
        done_segs = segs[done]
        phys_segs = segcache[done_segs]
        custom[K_GROW_RELEASES] += int(done_segs.size)
        self._live_segments -= int(done_segs.size)
        if probe is not None:
            # fired at the release write's *issue*: the callback precedes
            # the write's memory effect, which precedes any claim CAS
            # that observes the freed state — so the oracle always sees
            # release-before-relink, free of cross-wavefront skew.
            for s, p in zip(done_segs, phys_segs):
                probe.queue_segment_release(self.prefix, int(s), int(p))
        yield MemWrite(self.buf_segstate, phys_segs, 0)

    def publish(
        self,
        ctx: KernelContext,
        st: WavefrontQueueState,
        counts: np.ndarray,
        tokens: np.ndarray,
    ) -> Generator[Op, Op, None]:
        stats = ctx.stats
        dev = ctx.device
        counts = np.asarray(counts, dtype=np.int64)
        has_new = counts > 0
        if not has_new.any():
            return

        probe = self._probe(ctx)
        if probe is not None:
            probe.wf_phase(ctx.wf_id, "reserve", self.prefix)
        ranks, total = segmented_rank(has_new, counts)
        yield LocalOp(dev.lds_op_cycles)

        op = AtomicRMW(self.buf_ctrl, REAR, AtomicKind.ADD, total)
        yield op
        stats.custom[K_PROXY_ATOMICS] += 1
        base = int(op.old[0])
        if probe is not None:
            probe.queue_counter(self.prefix, "rear", probe.now, base + total)
            probe.queue_proxy(self.prefix, "publish", total)
            probe.queue_reserve(self.prefix, "publish", base, total)

        # --- growth: map every logical segment the batch spans ---------
        segcache = self._segcache(ctx.wf_id)
        yield from self._link_segments(
            ctx, segcache, base // self.seg_cap,
            (base + total - 1) // self.seg_cap,
        )

        # --- lock-step copy through the segment map --------------------
        max_count = int(counts.max())
        lane_base = base + ranks
        for t in range(max_count):
            active = counts > t
            raw = lane_base[active] + t
            phys = self._translate(segcache, raw)
            check = MemRead(self.buf_data, phys)
            yield check
            if np.any(check.result != DNA):
                # a mapped slot below Rear can only be non-sentinel if
                # the recycle protocol broke: surface it, never overwrite.
                yield Abort(
                    f"grow queue {self.prefix!r}: target slot not "
                    f"data-not-arrived in a freshly mapped segment "
                    f"(recycle protocol violation)",
                    info={
                        "queue": self.prefix,
                        "capacity": self.capacity,
                        "fill": int(raw[check.result != DNA][0]),
                    },
                )
            vals = tokens[active, t]
            yield from self._store_batch(ctx, raw, phys, vals)
        stats.custom[K_ENQ_TOKENS] += int(total)

    def _store_batch(
        self,
        ctx: KernelContext,
        raw: np.ndarray,
        phys: np.ndarray,
        vals: np.ndarray,
    ) -> Generator[Op, Op, None]:
        """One lock-step store sub-iteration (plant hook point)."""
        if ctx.probe is not None:
            ctx.probe.queue_store(self.prefix, raw, vals)
        yield MemWrite(self.buf_data, phys, vals)


class SpillQueue(RetryFreeQueue):
    """Circular RF/AN ring with dead-drop backpressure and a drain pump.

    A publish whose batch would push the ring's fill estimate past
    ``high_water`` takes *no* Rear reservation: the whole batch is
    appended to the overflow ring instead.  The pump (run from
    ``acquire`` every work cycle) re-publishes spilled tokens through
    the normal Rear path — fresh reservation, sentinel check, store —
    once fill drops to ``low_water``, in FIFO order under a CAS lock.

    Dropping the reservation (not just the store) preserves the §4.2
    ring soundness argument: every reserved Rear slot is still filled
    promptly by its publisher, so the window in which a slot is
    reserved-but-empty stays short and bounded, exactly as in the bare
    circular RF/AN queue — ``capacity`` must still exceed the resident
    lane count plus the concurrent publish burst, but no longer needs
    to cover the workload's fill excursions: those spill.

    Parameters
    ----------
    capacity:
        Ring size.  Must exceed the number of resident lanes plus a
        publish-burst margin (same constraint as ``circular=True``
        RF/AN); bursts beyond ``high_water`` spill instead of aborting.
    spill_capacity:
        Overflow-ring entries (default ``max(64, 4 * capacity)``).
        Exhausting *this* is still a graceful queue-full abort.
    high_water:
        Projected fill above which a publish dead-drops
        (default ``3 * capacity // 4``).
    low_water:
        Fill at or below which the pump re-publishes
        (default ``capacity // 2``).
    pump_batch:
        Max tokens one pump run re-publishes (bounds the lock hold).
    """

    variant = "SPILL"
    spillable = True

    def __init__(
        self,
        capacity: int,
        prefix: str = "wq",
        circular: bool = True,
        *,
        spill_capacity: int | None = None,
        high_water: int | None = None,
        low_water: int | None = None,
        pump_batch: int = 8,
    ):
        # the ring is the whole point: SPILL is always circular.
        super().__init__(capacity, prefix, circular=True)
        if spill_capacity is None:
            spill_capacity = max(64, 4 * self.capacity)
        if spill_capacity <= 0:
            raise ValueError("spill_capacity must be positive")
        if high_water is None:
            high_water = 3 * self.capacity // 4
        if low_water is None:
            low_water = self.capacity // 2
        if not 0 < low_water <= high_water <= self.capacity:
            raise ValueError(
                f"need 0 < low_water <= high_water <= capacity, got "
                f"low={low_water} high={high_water} cap={self.capacity}"
            )
        if pump_batch <= 0:
            raise ValueError("pump_batch must be positive")
        self.spill_capacity = int(spill_capacity)
        self.high_water = int(high_water)
        self.low_water = int(low_water)
        self.pump_batch = int(pump_batch)
        self.buf_spill_toks = f"{prefix}.spill.toks"
        self.buf_spill_ctrl = f"{prefix}.spill.ctrl"
        self._spill_pending = 0
        self._peak_depth = 0

    # ------------------------------------------------------------------
    # host side
    # ------------------------------------------------------------------
    def allocate(self, memory: GlobalMemory) -> None:
        super().allocate(memory)
        # the token word doubles as the entry-valid flag: DNA means the
        # entry is claimed but not yet written (or already consumed), so
        # the pump never reads a half-published entry and wrap reuse is
        # safe without a separate flag array.
        memory.alloc(self.buf_spill_toks, self.spill_capacity, fill=DNA)
        memory.alloc(self.buf_spill_ctrl, 3, fill=0)
        self._spill_pending = 0
        self._peak_depth = 0

    def drain_host(self, memory: GlobalMemory) -> np.ndarray:
        resident = super().drain_host(memory)
        sctrl = memory[self.buf_spill_ctrl]
        toks = memory[self.buf_spill_toks]
        out = list(resident)
        for e in range(int(sctrl[SP_HEAD]), int(sctrl[SP_TAIL])):
            v = toks[e % self.spill_capacity]
            if v != DNA:
                out.append(int(v))
        return np.asarray(out, dtype=np.int64)

    # ------------------------------------------------------------------
    # kernel side
    # ------------------------------------------------------------------
    def acquire(
        self, ctx: KernelContext, st: WavefrontQueueState
    ) -> Generator[Op, Op, None]:
        # the persistent scheduler calls acquire every work cycle, which
        # makes it the natural pump hook: spilled work drains even when
        # every lane is parked waiting for exactly those tokens (at
        # wind-down Front overruns Rear, the fill estimate goes
        # negative, and any polling wavefront pumps).
        yield from self._pump(ctx)
        yield from super().acquire(ctx, st)

    def publish(
        self,
        ctx: KernelContext,
        st: WavefrontQueueState,
        counts: np.ndarray,
        tokens: np.ndarray,
    ) -> Generator[Op, Op, None]:
        counts = np.asarray(counts, dtype=np.int64)
        has_new = counts > 0
        if not has_new.any():
            return
        probe = self._probe(ctx)
        total = int(counts.sum())
        fill_rd = self._read_ctrl()
        yield fill_rd
        front, rear = int(fill_rd.result[0]), int(fill_rd.result[1])
        if rear + total - front > self.high_water:
            # backpressure: dead-drop the whole batch — crucially
            # *before* taking any Rear reservation, so the ring never
            # carries a slot nobody is about to fill.
            flat = np.concatenate(
                [tokens[i, : counts[i]] for i in np.flatnonzero(has_new)]
            )
            yield from self._spill(ctx, flat)
            return
        yield from self._publish_ring(ctx, st, counts, tokens)

    def _publish_ring(
        self,
        ctx: KernelContext,
        st: WavefrontQueueState,
        counts: np.ndarray,
        tokens: np.ndarray,
    ) -> Generator[Op, Op, None]:
        """The unmodified RF/AN circular publish (Listing 3)."""
        yield from super().publish(ctx, st, counts, tokens)

    def _spill(
        self, ctx: KernelContext, vals: np.ndarray
    ) -> Generator[Op, Op, None]:
        custom = ctx.stats.custom
        probe = ctx.probe
        n = int(vals.size)
        head_rd = MemRead(self.buf_spill_ctrl, SP_HEAD)
        yield head_rd
        head = int(head_rd.result[0])
        claim = AtomicRMW(self.buf_spill_ctrl, SP_TAIL, AtomicKind.ADD, n)
        yield claim
        base = int(claim.old[0])
        depth = base + n - head
        # head only advances, so a stale read overestimates the depth:
        # if the estimate fits, the true depth fits.
        if depth > self.spill_capacity:
            yield Abort(
                f"queue full: queue {self.prefix!r} spill ring exhausted "
                f"({depth} pending > spill_capacity "
                f"{self.spill_capacity}); the pump cannot keep up",
                info={
                    "queue": self.prefix,
                    "capacity": self.spill_capacity,
                    "fill": depth,
                },
            )
        entries = (base + np.arange(n, dtype=np.int64)) % self.spill_capacity
        self._spill_pending += n
        self._peak_depth = max(self._peak_depth, depth)
        custom[K_SPILL_TOKENS] += n
        custom[K_SPILL_PEAK_DEPTH] = self._peak_depth
        if probe is not None:
            # fired at the entry write's *issue*: it precedes the write's
            # memory effect, which precedes any pump read that returns
            # these tokens — so the oracle always sees spill-before-
            # reinject for each token, free of cross-wavefront skew.
            probe.queue_spill(self.prefix, vals)
        yield MemWrite(self.buf_spill_toks, entries, vals)

    # -- drain pump -----------------------------------------------------
    def _gate_ok(self) -> bool:
        """Zero-op gate: don't even read fill when nothing is pending.

        ``_spill_pending`` mirrors (tail - head): both ends move exactly
        once per spilled/re-published token, so the mirror is eventually
        exact; staleness only delays a pump by a cycle, never loses one
        (acquire runs every work cycle until termination).
        """
        return self._spill_pending > 0

    def _pump(self, ctx: KernelContext) -> Generator[Op, Op, None]:
        if not self._gate_ok():
            return
        custom = ctx.stats.custom
        probe = ctx.probe
        ctrl_rd = self._read_ctrl()
        yield ctrl_rd
        front, rear = int(ctrl_rd.result[0]), int(ctrl_rd.result[1])
        # reservations outpacing publishes drive the estimate negative —
        # which is exactly when re-publication helps most.  A near-full
        # overflow ring forces the pump regardless of fill.
        forced = self._spill_pending > self.spill_capacity - 2 * self.capacity
        if rear - front > self.low_water and not forced:
            return
        lock = AtomicRMW(self.buf_spill_ctrl, SP_LOCK, AtomicKind.CAS, 0, 1)
        yield lock
        if not bool(lock.success[0]):
            return  # someone else is pumping; no retry
        custom[K_SPILL_PUMP_RUNS] += 1
        hr = MemRead(
            self.buf_spill_ctrl,
            np.array([SP_HEAD, SP_TAIL], dtype=np.int64),
        )
        yield hr
        head, tail = int(hr.result[0]), int(hr.result[1])
        k = min(tail - head, self.pump_batch)
        if k <= 0:
            yield MemWrite(self.buf_spill_ctrl, SP_LOCK, 0)
            return
        entries = (head + np.arange(k, dtype=np.int64)) % self.spill_capacity
        tok_rd = MemRead(self.buf_spill_toks, entries)
        yield tok_rd
        toks = tok_rd.result
        # an entry still holding DNA was claimed but not yet written;
        # FIFO order stops the batch there (retried next cycle).
        unwritten = np.flatnonzero(toks == DNA)
        if unwritten.size:
            k = int(unwritten[0])
        if k > 0:
            toks = np.ascontiguousarray(toks[:k])
            yield from self._reinject(ctx, toks)
            yield from self._retire_entries(ctx, entries[:k], head + k)
            self._spill_pending -= k
            custom[K_SPILL_REINJECTED] += k
        yield MemWrite(self.buf_spill_ctrl, SP_LOCK, 0)

    def _reinject(
        self, ctx: KernelContext, toks: np.ndarray
    ) -> Generator[Op, Op, None]:
        """Re-publish spilled tokens through the ordinary Rear path."""
        custom = ctx.stats.custom
        probe = ctx.probe
        k = int(toks.size)
        op = AtomicRMW(self.buf_ctrl, REAR, AtomicKind.ADD, k)
        yield op
        custom[K_PROXY_ATOMICS] += 1
        base = int(op.old[0])
        raw = base + np.arange(k, dtype=np.int64)
        if probe is not None:
            probe.queue_counter(self.prefix, "rear", probe.now, base + k)
            probe.queue_proxy(self.prefix, "publish", k)
            probe.queue_reserve(self.prefix, "publish", base, k)
        phys = self._phys(raw)
        check = MemRead(self.buf_data, phys)
        yield check
        if np.any(check.result != DNA):
            # fill was at or below low_water when we started; a target
            # can only be occupied if the ring is undersized for the
            # resident lanes — the same §4.2 abort as bare circular.
            yield Abort(
                f"queue full: queue {self.prefix!r} target slot not "
                f"data-not-arrived during spill re-publication (ring "
                f"capacity {self.capacity} below resident-lane demand)",
                info={
                    "queue": self.prefix,
                    "capacity": self.capacity,
                    "fill": self.capacity,
                },
            )
        if probe is not None:
            probe.queue_reinject(self.prefix, raw, toks)
            probe.queue_store(self.prefix, raw, toks)
        yield MemWrite(self.buf_data, phys, toks)
        custom[K_ENQ_TOKENS] += k

    def _retire_entries(
        self, ctx: KernelContext, entries: np.ndarray, new_head: int
    ) -> Generator[Op, Op, None]:
        """Mark entries consumed and advance the ring head.

        Exclusive under the pump lock, so plain writes suffice; the
        lock-release write is ordered after them (program order), which
        is what makes the next holder's reads safe.  Split out so the
        fault-injection plant can model a crash *between* the token
        stores and the head advance (see ``repro.verify.faults``).
        """
        yield MemWrite(self.buf_spill_toks, entries, DNA)
        yield MemWrite(self.buf_spill_ctrl, SP_HEAD, new_head)
