"""RF/AN — the paper's retry-free, arbitrary-n concurrent queue (§4).

Dequeue (Listing 1 + Listing 2)
    Hungry lanes agree on relative indices with a wavefront-local
    aggregation (the lock-step ``atomic_inc`` on ``lQueueSlotsNeeded``);
    the proxy lane then advances ``Front`` by the hungry count with a
    single **atomic fetch-add** — which cannot fail — and every hungry
    lane is parked on a unique slot.  From then on the lane checks its
    slot with one plain (non-atomic) global read per work cycle until the
    ``dna`` sentinel is replaced by a token.  The queue-empty exception
    has been *refactored into a memory poll*: no retry of any queue
    operation ever happens.

Enqueue (Listing 3)
    Lanes aggregate their newly-discovered token counts locally; the
    proxy advances ``Rear`` once by the total; lanes then copy their
    tokens into their reserved slots in lock-step, verifying each target
    slot still holds the sentinel.  A non-sentinel target is a queue-full
    exception, which **aborts the kernel** (capacity is a host planning
    decision, not something the device can fix by spinning).

Cost profile per wavefront work cycle: one local aggregation + *at most
one* global atomic for dequeue and one for enqueue, independent of how
many entries move — the arbitrary-n property.
"""

from __future__ import annotations

from typing import Generator

import numpy as np

from repro.simt import (
    Abort,
    AtomicKind,
    AtomicRMW,
    KernelContext,
    LocalOp,
    MemRead,
    MemWrite,
    Op,
)
from repro.simt.engine import transactions_for
from repro.simt.lanes import rank_within, segmented_rank

from .constants import DNA, FRONT, REAR
from .queue_api import (
    DeviceQueue,
    K_ARRIVAL_CHECKS,
    K_DEQ_REQUESTS,
    K_DEQ_TOKENS,
    K_ENQ_TOKENS,
    K_PROXY_ATOMICS,
)
from .state import WavefrontQueueState


class RetryFreeQueue(DeviceQueue):
    """The proposed retry-free / arbitrary-n queue."""

    variant = "RF/AN"
    retry_free = True
    arbitrary_n = True

    def acquire(
        self, ctx: KernelContext, st: WavefrontQueueState
    ) -> Generator[Op, Op, None]:
        custom = ctx.stats.custom
        probe = ctx.probe
        if probe is not None:
            probe.queue_register(self.prefix, self.capacity, self.variant)

        # --- Listing 1: slot reservation for newly hungry lanes --------
        n_hungry = st.wavefront_size - st.n_token - st.n_watching
        if n_hungry:
            hungry = st.hungry_mask()
            custom[K_DEQ_REQUESTS] += n_hungry
            if probe is not None:
                probe.wf_phase(ctx.wf_id, "reserve", self.prefix)
            ranks, total = rank_within(hungry)
            # lock-step local atomic_inc: zeroing by the proxy + per-lane
            # increment, one LDS round (lines 2-9 of Listing 1).
            yield LocalOp(ctx.device.lds_op_cycles)
            # proxy thread reserves `total` slots with one AFA (line 13).
            op = AtomicRMW(self.buf_ctrl, FRONT, AtomicKind.ADD, total)
            yield op
            custom[K_PROXY_ATOMICS] += 1
            base = int(op.old[0])
            lanes = np.flatnonzero(hungry)
            st.watch(lanes, base + ranks[lanes])
            if probe is not None:
                probe.queue_counter(self.prefix, "front", probe.now, base + total)
                probe.queue_proxy(self.prefix, "acquire", total)
                probe.queue_reserve(self.prefix, "acquire", base, total)
                probe.queue_watch(self.prefix, base + ranks[lanes], probe.now)

        # --- Listing 2: data-arrival poll for every watching lane ------
        if st.n_watching == 0:
            return
        # the watch set only changes on reservation/grant, so the lane,
        # address and transaction arrays — and the poll op itself, whose
        # result the engine refills at each completion — are cached
        # between polls: this poll runs every work cycle of every starved
        # wavefront.
        cache = st.cache
        if cache is None:
            watching = st.slot >= 0
            raw = st.slot[watching]
            inb = self._in_bounds(raw)
            lanes = np.flatnonzero(watching)[inb]
            phys = np.asarray(self._phys(raw[inb]), dtype=np.int64)
            # frozen: the watch set never changes while this op is cached
            # (MemRead hot-loop contract), which also lets the engine
            # reuse its span across re-issues.
            phys.setflags(write=False)
            trans = transactions_for(phys) if phys.size else 0
            read = MemRead(self.buf_data, phys, trans=trans, prechecked=True)
            st.cache = cache = (lanes, phys, read, int(lanes.size))
        lanes, phys, read, n_lanes = cache
        if n_lanes == 0:
            # all monitored slots are beyond queue bounds; no data will
            # ever arrive there (kernel is winding down).
            return
        if probe is not None:
            probe.wf_phase(ctx.wf_id, "dna_spin", self.prefix)
        yield read
        custom[K_ARRIVAL_CHECKS] += n_lanes
        if not read.fresh:
            # the engine elided the re-sample: no store hit the slot
            # array since the previous poll, and a cached poll op only
            # survives polls that granted nothing — so the previous
            # verdict (no arrivals) still holds without any reduction.
            if probe is not None:
                probe.queue_instant(self.prefix, "empty_poll", probe.now, n_lanes)
            return
        res = read.result
        # task tokens are non-negative and DNA is the smallest sentinel,
        # so max(slots) == DNA means no data arrived: one reduction in the
        # common empty poll instead of a compare plus an any().
        if int(res.max()) == DNA:
            if probe is not None:
                probe.queue_instant(self.prefix, "empty_poll", probe.now, n_lanes)
            return
        arrived = res != DNA
        got_lanes = lanes[arrived]
        tokens = res[arrived]
        # pick up the token and put the sentinel back so the slot can be
        # reused when the queue is configured circular (§4.2).  The
        # probe events fire at the restore write's issue, i.e. strictly
        # before any later wrap-around producer can observe the restored
        # sentinel — the ordering the verification oracle relies on.
        if probe is not None:
            probe.queue_grant(self.prefix, st.slot[got_lanes], probe.now)
            probe.queue_deliver(self.prefix, st.slot[got_lanes], tokens)
        yield MemWrite(self.buf_data, phys[arrived], DNA)
        st.unwatch(got_lanes)
        st.grant(got_lanes, tokens)
        custom[K_DEQ_TOKENS] += int(got_lanes.size)

    def publish(
        self,
        ctx: KernelContext,
        st: WavefrontQueueState,
        counts: np.ndarray,
        tokens: np.ndarray,
    ) -> Generator[Op, Op, None]:
        stats = ctx.stats
        dev = ctx.device
        counts = np.asarray(counts, dtype=np.int64)
        has_new = counts > 0
        if not has_new.any():
            return

        # --- Listing 3 lines 2-11: local aggregation of counts ---------
        probe = self._probe(ctx)
        if probe is not None:
            probe.wf_phase(ctx.wf_id, "reserve", self.prefix)
        ranks, total = segmented_rank(has_new, counts)
        yield LocalOp(dev.lds_op_cycles)

        # --- line 15: proxy reserves `total` entries with one AFA ------
        op = AtomicRMW(self.buf_ctrl, REAR, AtomicKind.ADD, total)
        yield op
        stats.custom[K_PROXY_ATOMICS] += 1
        base = int(op.old[0])
        if probe is not None:
            probe.queue_counter(self.prefix, "rear", probe.now, base + total)
            probe.queue_proxy(self.prefix, "publish", total)
            probe.queue_reserve(self.prefix, "publish", base, total)

        # --- lines 24-27: lock-step copy, one sub-iteration per token
        # rank within the busiest lane.  Each iteration checks the target
        # slot still holds the sentinel, then overwrites it.
        max_count = int(counts.max())
        lane_base = base + ranks
        for t in range(max_count):
            active = counts > t
            raw = lane_base[active] + t
            oob = ~self._in_bounds(raw)
            if oob.any():
                # enqueue must never store out of bounds (§4.3); a
                # monotonic queue that ran past capacity is full.
                yield Abort(
                    f"queue full: queue {self.prefix!r} raw index "
                    f"{int(raw[oob][0])} beyond capacity {self.capacity} "
                    f"(fill {int(raw[oob][0])}/{self.capacity})",
                    info={
                        "queue": self.prefix,
                        "capacity": self.capacity,
                        "fill": int(raw[oob][0]),
                    },
                )
            phys = self._phys(raw)
            check = MemRead(self.buf_data, phys)
            yield check
            if np.any(check.result != DNA):
                yield Abort(
                    f"queue full: queue {self.prefix!r} target slot not "
                    f"data-not-arrived (Listing 3 line 25; ring fill "
                    f"{self.capacity}/{self.capacity})",
                    info={
                        "queue": self.prefix,
                        "capacity": self.capacity,
                        # the overwritten slot still holds live data, so
                        # the physical ring is at capacity.
                        "fill": self.capacity,
                    },
                )
            vals = tokens[active, t]
            if probe is not None:
                probe.queue_store(self.prefix, raw, vals)
            yield MemWrite(self.buf_data, phys, vals)
        stats.custom[K_ENQ_TOKENS] += int(total)
