"""BASE — a traditional lock-free, CAS-based concurrent queue (§5.3).

This is the ablation baseline with *neither* of the paper's properties:

* **No arbitrary-n** — every hungry lane runs its own dequeue, every
  produced token its own enqueue.  All those requests hit the shared
  ``Front``/``Rear`` words individually and serialize at the atomic unit:
  a wavefront's dequeue is a burst of per-lane CASes instead of the one
  proxy fetch-add of the proposed design.  (The lanes speculate disjoint
  tickets from their wavefront rank — the charitable traditional
  formulation; a same-expected CAS loop convoys catastrophically under
  lock-step execution, far beyond the BASE slowdowns the paper reports.
  See DESIGN.md §7.)
* **No retry-free** — cross-wavefront interference between the shared
  load and the CAS burst fails the speculation; failed lanes stay hungry
  and retry next work cycle (Algorithm 1's outer loop), and a dequeue
  against an empty queue raises a queue-empty exception.  Both retry
  flavours grow with active threads — Figure 1.

Slot hand-off uses per-slot *valid flags*, the standard fix for the
reserve-then-write race in array-based CAS queues (cf. Valois 1994): an
enqueuer reserves a slot by CAS on ``Rear``, writes the token, then sets
the flag; a dequeuer that won a slot by CAS on ``Front`` polls the flag
before reading.  This is exactly the kind of extra shared-memory traffic
the proposed design eliminates.

Queue-full aborts the kernel for all variants (paper footnote 2).
"""

from __future__ import annotations

from typing import Generator

import numpy as np

from repro.simt import (
    Abort,
    AtomicKind,
    AtomicRMW,
    GlobalMemory,
    KernelContext,
    MemRead,
    MemWrite,
    Op,
)
from repro.simt.lanes import rank_within

from .constants import FRONT, REAR
from .queue_api import (
    DeviceQueue,
    K_CAS_ROUNDS,
    K_DEQ_REQUESTS,
    K_DEQ_TOKENS,
    K_EMPTY_EXC,
    K_ENQ_TOKENS,
)
from .state import WavefrontQueueState


class BaseCasQueue(DeviceQueue):
    """Traditional per-lane CAS queue (the paper's BASE variant)."""

    variant = "BASE"
    retry_free = False
    arbitrary_n = False

    def __init__(self, capacity: int, prefix: str = "wq", circular: bool = False):
        super().__init__(capacity, prefix=prefix, circular=circular)
        self.buf_valid = f"{prefix}.valid"

    # ------------------------------------------------------------------
    def allocate(self, memory: GlobalMemory) -> None:
        super().allocate(memory)
        memory.alloc(self.buf_valid, self.capacity, fill=0)
        memory.mark_hot(self.buf_valid)  # polled like the slot array

    def _host_mark_valid(self, memory: GlobalMemory, start: int, n: int) -> None:
        valid = memory[self.buf_valid]
        for raw in range(start, start + n):
            valid[self._phys(raw)] = 1

    def _is_full(self, front: int, rear: int, extra: int) -> bool:
        if self.circular:
            return rear + extra - front > self.capacity
        return rear + extra > self.capacity

    # ------------------------------------------------------------------
    def acquire(
        self, ctx: KernelContext, st: WavefrontQueueState
    ) -> Generator[Op, Op, None]:
        """One dequeue attempt per hungry lane per work cycle.

        A lane that wins the Front CAS parks its claimed slot in
        ``st.slot`` and completes the hand-off (valid-flag poll + data
        read) on this or a later cycle; a lane whose CAS fails, or that
        saw an empty queue, simply remains hungry — Algorithm 1's outer
        loop is the retry loop.
        """
        stats = ctx.stats
        probe = self._probe(ctx)

        # 1. per-lane CAS ticket claims, one attempt per work cycle.
        #
        #    Each hungry lane executes
        #        old = load(front)
        #        if (old + my_rank >= rear) -> queue-empty exception
        #        CAS(&front, old + my_rank, old + my_rank + 1)
        #    i.e. the standard *speculative ticket* formulation of a
        #    per-thread CAS dequeue on SIMT hardware: a lane speculates
        #    that the hungry lanes before it in the wavefront will claim
        #    the preceding entries, so uncontended wavefronts feed all
        #    their lanes in one chained burst.  A totally naive
        #    same-expected CAS loop convoys catastrophically under
        #    lock-step execution (every round feeds at most one lane) —
        #    far beyond the BASE slowdowns the paper reports — so this is
        #    the charitable traditional baseline; see DESIGN.md §7.
        #    Interference from other wavefronts between the load and the
        #    CAS burst still fails the speculation, and those failures
        #    (Figure 1) grow with the number of active wavefronts.
        n = st.n_hungry
        if n:
            attempting = st.hungry_mask()
            stats.custom[K_DEQ_REQUESTS] += n
            if probe is not None:
                probe.wf_phase(ctx.wf_id, "reserve", self.prefix)
            ctrl = self._read_ctrl()
            yield ctrl
            front, rear = int(ctrl.result[0]), int(ctrl.result[1])
            if probe is not None:
                probe.queue_counter(self.prefix, "front", probe.now, front)
                probe.queue_counter(self.prefix, "rear", probe.now, rear)
            avail = rear - front
            ranks, _ = rank_within(attempting)
            live = attempting & (ranks < avail)
            starved = int(attempting.sum() - live.sum())
            if starved:
                # queue-empty exception: these lanes give up this work
                # cycle and retry on the next one (§3.2 / §6.5).
                stats.custom[K_EMPTY_EXC] += starved
                if probe is not None:
                    probe.queue_instant(self.prefix, "empty", probe.now, starved)
            if live.any():
                lanes = np.flatnonzero(live)
                exp = front + ranks[lanes]
                op = AtomicRMW(
                    self.buf_ctrl,
                    np.full(lanes.size, FRONT, dtype=np.int64),
                    AtomicKind.CAS,
                    exp,
                    exp + 1,
                )
                yield op
                won = op.success
                if won.any():
                    win_lanes = lanes[won]
                    st.watch(win_lanes, exp[won])
                    if probe is not None:
                        # the winning tickets of one CAS burst are always
                        # a contiguous run from the Front value current
                        # at service time (the atomic unit serializes the
                        # burst, and each win advances the word by one).
                        probe.queue_reserve(
                            self.prefix, "acquire",
                            int(exp[won][0]), int(won.sum()),
                        )
                        probe.queue_watch(self.prefix, exp[won], probe.now)
                if not won.all():
                    # failed speculation: retry next work cycle (counted
                    # as retry traffic; engine counted the CAS failures)
                    stats.custom[K_CAS_ROUNDS] += 1
                    if probe is not None:
                        probe.queue_instant(
                            self.prefix, "cas_retry", probe.now,
                            int((~won).sum()),
                        )

        # 2. hand-off: poll valid flags of every claimed slot once per
        #    work cycle; producers may still be writing.
        if st.n_watching:
            claimed = st.slot >= 0
            lanes = np.flatnonzero(claimed)
            raw = st.slot[lanes]
            phys = self._phys(raw)
            if probe is not None:
                probe.wf_phase(ctx.wf_id, "dna_spin", self.prefix)
            vread = MemRead(self.buf_valid, phys)
            yield vread
            ready = vread.result == 1
            if ready.any():
                got_lanes = lanes[ready]
                got_phys = phys[ready]
                dread = MemRead(self.buf_data, got_phys)
                yield dread
                # probe events fire at the flag-clear's issue, strictly
                # before a wrap-around producer can see the slot
                # released (oracle order).
                if probe is not None:
                    probe.queue_grant(self.prefix, raw[ready], probe.now)
                    probe.queue_deliver(self.prefix, raw[ready], dread.result)
                yield MemWrite(self.buf_valid, got_phys, 0)
                st.unwatch(got_lanes)
                st.grant(got_lanes, dread.result)
                stats.custom[K_DEQ_TOKENS] += int(got_lanes.size)
            else:
                stats.custom[K_CAS_ROUNDS] += 1  # hand-off spin traffic
                if probe is not None:
                    probe.queue_instant(
                        self.prefix, "handoff_spin", probe.now, int(lanes.size)
                    )

    # ------------------------------------------------------------------
    def publish(
        self,
        ctx: KernelContext,
        st: WavefrontQueueState,
        counts: np.ndarray,
        tokens: np.ndarray,
    ) -> Generator[Op, Op, None]:
        """Per-token CAS enqueue (traditional, non-aggregated).

        Newly discovered tokens must be in the queue before the work
        cycle's completion accounting, so the enqueue loops until every
        token is placed: per round, one shared read of (Front, Rear) and
        one lock-step CAS burst from every lane still holding tokens —
        at most one placement per round, exactly the serialization the
        arbitrary-n property removes.
        """
        stats = ctx.stats
        probe = self._probe(ctx)
        counts = np.asarray(counts, dtype=np.int64)
        if not (counts > 0).any():
            return
        if probe is not None:
            probe.wf_phase(ctx.wf_id, "reserve", self.prefix)
        placed = np.zeros_like(counts)

        # per-token speculative-ticket CAS enqueues (mirror of acquire):
        # each round, every lane with an unplaced token reloads (Front,
        # Rear) and CASes Rear at its rank-speculated ticket; winners copy
        # their token and set the valid flag.  All tokens must land before
        # the work cycle's completion accounting, so rounds repeat until
        # everything is placed — each failed round is retry traffic the
        # arbitrary-n property would have avoided.
        first_round = True
        while True:
            pending = counts > placed
            if not pending.any():
                break
            if not first_round:
                stats.custom[K_CAS_ROUNDS] += 1
            first_round = False
            ctrl = self._read_ctrl()
            yield ctrl
            front, rear = int(ctrl.result[0]), int(ctrl.result[1])
            if probe is not None:
                probe.queue_counter(self.prefix, "front", probe.now, front)
                probe.queue_counter(self.prefix, "rear", probe.now, rear)
            ranks, n_round = rank_within(pending)
            if self._is_full(front, rear, n_round):
                yield Abort(
                    f"queue full: queue {self.prefix!r} fill "
                    f"{rear - front}/{self.capacity} (rear={rear} "
                    f"front={front} need={n_round})",
                    info={
                        "queue": self.prefix,
                        "capacity": self.capacity,
                        "fill": rear - front,
                    },
                )
            lanes = np.flatnonzero(pending)
            exp = rear + ranks[lanes]
            op = AtomicRMW(
                self.buf_ctrl,
                np.full(lanes.size, REAR, dtype=np.int64),
                AtomicKind.CAS,
                exp,
                exp + 1,
            )
            yield op
            won = op.success
            if probe is not None and not won.all():
                probe.queue_instant(
                    self.prefix, "cas_retry", probe.now, int((~won).sum())
                )
            if not won.any():
                continue
            win_lanes = lanes[won]
            raw = exp[won]
            phys = self._phys(raw)
            if probe is not None:
                # as in acquire: a burst's winning Rear tickets form one
                # contiguous run starting at the serviced Rear value.
                probe.queue_reserve(
                    self.prefix, "publish", int(raw[0]), int(raw.size)
                )
            if self.circular:
                # wait for previous-generation consumers to release the
                # physical slots before overwriting them.
                if probe is not None:
                    probe.wf_phase(ctx.wf_id, "full_wait", self.prefix)
                while True:
                    vread = MemRead(self.buf_valid, phys)
                    yield vread
                    if not (vread.result == 1).any():
                        break
                    stats.custom[K_CAS_ROUNDS] += 1
                if probe is not None:
                    probe.wf_phase(ctx.wf_id, "reserve", self.prefix)
            toks = tokens[win_lanes, placed[win_lanes]]
            if probe is not None:
                probe.queue_store(self.prefix, raw, toks)
            yield MemWrite(self.buf_data, phys, toks)
            yield MemWrite(self.buf_valid, phys, 1)
            placed[win_lanes] += 1
            stats.custom[K_ENQ_TOKENS] += int(win_lanes.size)
