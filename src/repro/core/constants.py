"""Shared constants of the queue/scheduler layer."""

from __future__ import annotations

#: The *data-not-arrived* sentinel (the paper's ``dna`` / ``Missing``).
#:
#: Every queue slot holds this value until an enqueuer stores a real task
#: token there; a dequeuer that still sees it knows its data has not
#: arrived (Listing 2).  Task tokens are non-negative integers (vertex
#: indices, task ids), so any negative value is safe; -1 keeps dumps
#: readable.
DNA = -1

#: Index of ``Front`` within a queue's control buffer.
FRONT = 0
#: Index of ``Rear`` within a queue's control buffer.
REAR = 1

#: Index of the in-flight task counter within the scheduler control buffer.
PENDING = 0
#: Index of the done flag within the scheduler control buffer.
DONE = 1

#: The paper's empirically chosen work-cycle granularity: each work cycle
#: processes at most this many uniform-complexity sub-tasks (footnote 3).
DEFAULT_SUBTASKS_PER_CYCLE = 4
