"""Simulated-cycle liveness watchdog for persistent-kernel launches.

The paper's scheduler is blocking: wavefronts spin on data-not-arrived
slots, full queues, and the termination flag.  A protocol bug (or an
adversarial schedule from :mod:`repro.verify`) can therefore wedge a
launch — every wavefront live, every CU busy spinning, nothing ever
delivered — and the only backstop so far was the engine's
``max_cycles`` timeout, which fires billions of cycles late with no
diagnosis.  Cooperative Kernels (PAPERS.md) makes the general argument:
blocking algorithms on shared GPUs need *runtime* liveness detection.

:class:`LivenessWatchdog` is that detector.  The engine polls it at
simulated-cycle cadence (see
:data:`repro.simt.engine.WATCHDOG_FACTORY`); each poll reads the
paired :class:`~repro.obs.flight.FlightRecorder`'s
:meth:`~repro.obs.flight.FlightRecorder.progress_signature` — a tuple
of counters (deliveries, stores, exits, work-phase entries, done-flag
raises) that advances iff some wavefront made real progress.  A full
``window`` of simulated cycles with no advance is a **trip**, and trips
escalate deterministically:

1. first trip  → **warn** (recorded, reported via ``on_event``);
2. second trip → **snapshot** (the recorder's full state is frozen);
3. third trip  → **abort**: raise
   :class:`~repro.simt.errors.WedgeError` carrying the final snapshot
   and a stall classification.

Classification reuses the PR 7 blame taxonomy
(:data:`repro.obs.blame.STALL_CLASSES` via
:meth:`~repro.obs.flight.FlightRecorder.stall_classes`): the dominant
current stall class among live wavefronts — ``dna_spin`` for a DNA
spin storm, ``full_wait`` for an unpoppable full queue, and
``cu_occupancy`` for wavefronts a starved CU never lets issue.

Polls only *read* recorder state, so a watchdog that never escalates
leaves the launch bit-identical to an unwatched one (pinned in
``tests/test_simt_determinism.py``); false-positive resistance on
slow-but-progressing workloads is pinned in
``tests/test_obs_watchdog.py``.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.simt.errors import WedgeError

from .blame import OTHER

#: default no-progress window in simulated cycles.  Generous on
#: purpose: the longest legitimate delivery gaps in the harness
#: workloads (deep nqueens levels, frontier-bound BFS slices) are tens
#: of thousands of cycles, two orders of magnitude below this.
DEFAULT_WINDOW = 2_000_000

#: trips before the watchdog aborts the launch (warn, snapshot, abort).
DEFAULT_ESCALATIONS = 3


class LivenessWatchdog:
    """Detects and escalates no-progress windows in a launch.

    ``recorder`` is the launch's :class:`FlightRecorder` (the watchdog
    never touches engine state directly).  ``on_event`` is an optional
    ``callback(cycle, action, classification)`` fired on every
    escalation step (``action`` is ``"warn"``, ``"snapshot"`` or
    ``"abort"``) — :class:`~repro.obs.flight.FlightSession` uses it to
    publish ``watchdog.warns`` / ``watchdog.trips`` metrics and stream
    runlog warnings.
    """

    def __init__(
        self,
        recorder,
        window: int = DEFAULT_WINDOW,
        escalations: int = DEFAULT_ESCALATIONS,
        on_event: Optional[Callable[[int, str, str], None]] = None,
    ):
        if window <= 0:
            raise ValueError(f"window must be positive, got {window}")
        if escalations < 1:
            raise ValueError(
                f"escalations must be >= 1, got {escalations}"
            )
        self.recorder = recorder
        self.window = int(window)
        self.escalations = int(escalations)
        self.on_event = on_event
        #: cumulative no-progress windows detected (healthy runs: 0).
        self.trips = 0
        self.warns = 0
        #: frozen recorder snapshots from ``snapshot`` escalations.
        self.snapshots: List[Dict] = []
        #: ``(cycle, action, classification)`` escalation log.
        self.events: List[tuple] = []
        self._strikes = 0
        self._last_sig: Optional[tuple] = None

    # ------------------------------------------------------------------
    # engine hooks
    # ------------------------------------------------------------------
    def launch_begin(self, device, n_wavefronts: int) -> int:
        """Reset per-launch strike state; return the first poll cycle."""
        self._strikes = 0
        self._last_sig = self.recorder.progress_signature()
        return self.window

    def poll(self, now: int, live: int) -> int:
        """One liveness check at simulated cycle ``now``.

        Returns the next cycle at which the engine should poll again;
        raises :class:`WedgeError` on the final escalation.
        """
        sig = self.recorder.progress_signature()
        if sig != self._last_sig:
            # progress since the last poll: reset the strike counter.
            self._last_sig = sig
            self._strikes = 0
            return now + self.window
        # a full window elapsed with an unchanged progress signature —
        # every live wavefront spent it stalled.
        self._strikes += 1
        self.trips += 1
        cls = self.classify()
        if self._strikes >= self.escalations:
            snapshot = self.recorder.snapshot()
            self._record(now, "abort", cls)
            raise WedgeError(
                f"launch wedged: no progress for {self._strikes} "
                f"windows of {self.window} simulated cycles "
                f"({live} wavefronts live; dominant stall: {cls})",
                classification=cls,
                snapshot=snapshot,
            )
        if self._strikes == 1:
            self.warns += 1
            self._record(now, "warn", cls)
        else:
            self.snapshots.append(self.recorder.snapshot())
            self._record(now, "snapshot", cls)
        return now + self.window

    # ------------------------------------------------------------------
    def classify(self) -> str:
        """Dominant stall class among live wavefronts (deterministic:
        highest count, lexicographic tie-break)."""
        hist = self.recorder.stall_classes()
        if not hist:
            return OTHER
        return min(hist, key=lambda c: (-hist[c], c))

    def _record(self, cycle: int, action: str, cls: str) -> None:
        self.events.append((cycle, action, cls))
        if self.on_event is not None:
            self.on_event(cycle, action, cls)
