"""Turn a recorded timeline into time-binned series and summaries.

Everything here is pure post-processing over a finished
:class:`~repro.obs.timeline.TimelineProbe`: the launch is over, the
streams are immutable, and the output is a plain JSON-able dict so the
harness can dump it next to the Perfetto trace.

The dict produced by :func:`compute_metrics` has this shape::

    {
      "device": "fiji", "cycles": 123456, "n_wavefronts": 224,
      "bins": 60, "bin_cycles": 2058,
      "engine": {
        "occupancy": [...],          # fraction of CU-issue-cycles busy, per bin
        "issues_per_bin": [...],
        "transactions_per_bin": [...],
        "issue_span": {...},         # summary of per-op issue-pipe spans
        "op_mix": {"MemRead": 123, ...},
      },
      "atomics": {
        "per_kcycle": [...],         # batches serviced per 1000 cycles, per bin
        "busy_frac": [...],          # fraction of each bin inside service windows
        "batch_lanes": {...},        # summary
        "cas_failure_burst": {...},  # summary over batches with failures
        "by_buf": {"queue.ring": {"batches": n, "failures": n, ...}},
        "hot_addrs": [[addr, hits], ...],
      },
      "queues": {
        "queue": {
          "capacity": 4096, "variant": "RF/AN",
          "depth": [...],            # rear-front sampled at bin edges
          "highwater": 87, "highwater_frac": 0.021,
          "dna_wait": {...},         # summary, cycles from watch to grant
          "proxy": {"acquire": {...}, "publish": {...}},  # lanes/op summaries
          "instants": {"empty": 12, ...},
          "starved_watches": 0,
          "fill_hist": {             # depth-at-publish histogram (the
            "edges": [...],          # capacity advisor's raw material,
            "counts": [...],         # see repro.harness.capacity)
            "samples": 1234,
          },
          # GROW queues additionally carry:
          "grow": {"segment_links": n, "segment_releases": n,
                   "peak_linked_segments": n, "live_segments": [...]},
          # SPILL queues additionally carry:
          "spill": {"spilled": n, "reinjected": n,
                    "peak_overflow_depth": n, "overflow_depth": [...],
                    "spill_burst": {...}},
        }, ...
      },
      "scheduler": {
        "parallelism": [...],        # active task tokens sampled at bin edges
        "peak_parallelism": 3584,
      },
      "truncated": false, "n_events": 123,
    }
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np


def summarize(values: Sequence[float]) -> Optional[Dict[str, float]]:
    """Five-number-ish summary of a sample list (None when empty)."""
    arr = np.asarray(list(values), dtype=np.float64)
    if arr.size == 0:
        return None
    return {
        "count": int(arr.size),
        "min": float(arr.min()),
        "max": float(arr.max()),
        "mean": float(arr.mean()),
        "p50": float(np.percentile(arr, 50)),
        "p95": float(np.percentile(arr, 95)),
    }


def _bin_intervals(starts, ends, bins: int, bin_cycles: int) -> np.ndarray:
    """Accumulate interval lengths into time bins (intervals may span bins)."""
    acc = np.zeros(bins, dtype=np.float64)
    if len(starts) == 0:
        return acc
    s = np.asarray(starts, dtype=np.int64)
    e = np.asarray(ends, dtype=np.int64)
    horizon = bins * bin_cycles
    np.clip(e, 0, horizon, out=e)
    np.clip(s, 0, horizon, out=s)
    live = e > s
    s, e = s[live], e[live]
    while s.size:
        b = s // bin_cycles
        edge = (b + 1) * bin_cycles
        seg_end = np.minimum(e, edge)
        np.add.at(acc, np.minimum(b, bins - 1), seg_end - s)
        carry = e > edge
        s, e = edge[carry], e[carry]
    return acc


def _sample_steps(points, edges) -> List[int]:
    """Sample a step series ``[(cycle, value)]`` at each bin edge."""
    if not points:
        return [0] * len(edges)
    cyc = np.asarray([p[0] for p in points], dtype=np.int64)
    val = np.asarray([p[1] for p in points], dtype=np.int64)
    idx = np.searchsorted(cyc, edges, side="right") - 1
    return [int(val[i]) if i >= 0 else 0 for i in idx]


def compute_metrics(probe, bins: int = 60) -> Dict:
    """Reduce *probe* (a finished TimelineProbe) to a JSON-able dict."""
    from repro.simt.engine import OP_KIND_NAMES

    cycles = max(int(probe.cycles), 1)
    bins = max(1, min(int(bins), cycles))
    bin_cycles = -(-cycles // bins)  # ceil
    edges = np.arange(1, bins + 1, dtype=np.int64) * bin_cycles

    dev = probe.device
    dev_name = getattr(dev, "name", None) or str(dev)
    n_cus = int(getattr(dev, "n_cus", 1) or 1)

    # ---------------- engine ----------------
    iss = probe.issues
    occ = _bin_intervals(
        [i[0] for i in iss], [i[4] for i in iss], bins, bin_cycles
    )
    issue_counts = np.zeros(bins, dtype=np.int64)
    trans_counts = np.zeros(bins, dtype=np.int64)
    op_mix: Dict[str, int] = {}
    if iss:
        start = np.asarray([i[0] for i in iss], dtype=np.int64)
        b = np.minimum(start // bin_cycles, bins - 1)
        np.add.at(issue_counts, b, 1)
        np.add.at(
            trans_counts, b, np.asarray([i[5] for i in iss], dtype=np.int64)
        )
        kinds, counts = np.unique(
            np.asarray([i[3] for i in iss], dtype=np.int64), return_counts=True
        )
        for k, c in zip(kinds, counts):
            op_mix[OP_KIND_NAMES.get(int(k), str(int(k)))] = int(c)
    denom = float(bin_cycles * n_cus)
    engine = {
        "occupancy": [round(float(x) / denom, 6) for x in occ],
        "issues_per_bin": [int(x) for x in issue_counts],
        "transactions_per_bin": [int(x) for x in trans_counts],
        "issue_span": summarize([i[4] - i[0] for i in iss]),
        "op_mix": op_mix,
    }

    # ---------------- atomics ----------------
    ats = probe.atomics
    at_busy = _bin_intervals(
        [a[0] for a in ats], [a[4] for a in ats], bins, bin_cycles
    )
    at_counts = np.zeros(bins, dtype=np.int64)
    by_buf: Dict[str, Dict[str, float]] = {}
    addr_hits: Dict[int, int] = {}
    for a in ats:
        at_counts[min(a[0] // bin_cycles, bins - 1)] += 1
        slot = by_buf.setdefault(
            a[1], {"batches": 0, "lanes": 0, "failures": 0, "busy_cycles": 0}
        )
        slot["batches"] += 1
        slot["lanes"] += a[3]
        slot["failures"] += a[5]
        slot["busy_cycles"] += a[4] - a[0]
        if a[6] >= 0:
            addr_hits[a[6]] = addr_hits.get(a[6], 0) + 1
    hot = sorted(addr_hits.items(), key=lambda kv: -kv[1])[:8]
    atomics = {
        "per_kcycle": [
            round(float(c) * 1000.0 / bin_cycles, 3) for c in at_counts
        ],
        "busy_frac": [round(float(x) / bin_cycles, 6) for x in at_busy],
        "batch_lanes": summarize([a[3] for a in ats]),
        "cas_failure_burst": summarize([a[5] for a in ats if a[5] > 0]),
        "by_buf": by_buf,
        "hot_addrs": [[int(k), int(v)] for k, v in hot],
    }

    # ---------------- queues ----------------
    queues: Dict[str, Dict] = {}
    for prefix, (capacity, variant) in sorted(probe.queues.items()):
        front = probe.counters.get((prefix, "front"), [])
        rear = probe.counters.get((prefix, "rear"), [])
        f = _sample_steps(front, edges)
        r = _sample_steps(rear, edges)
        depth = [max(rv - fv, 0) for fv, rv in zip(f, r)]
        all_depths = []
        if front and rear:
            fc = np.asarray([p[0] for p in front], dtype=np.int64)
            fv = np.asarray([p[1] for p in front], dtype=np.int64)
            rc = np.asarray([p[0] for p in rear], dtype=np.int64)
            rv = np.asarray([p[1] for p in rear], dtype=np.int64)
            # depth at every rear publish against latest front sample
            fi = np.searchsorted(fc, rc, side="right") - 1
            base = np.where(fi >= 0, fv[np.maximum(fi, 0)], 0)
            all_depths = np.maximum(rv - base, 0)
        highwater = int(np.max(all_depths)) if len(all_depths) else max(depth, default=0)
        # monotonic queues never wrap, so the binding capacity limit is
        # the highest raw index either control word reached (RF/AN's
        # front legitimately runs ahead of rear — reserved, not stored).
        max_raw = 0
        for pts in (front, rear):
            if pts:
                max_raw = max(max_raw, max(v for _, v in pts))
        proxy = {}
        for direction in ("acquire", "publish"):
            lanes = probe.proxy.get((prefix, direction))
            if lanes:
                proxy[direction] = summarize(lanes)
        instants = {
            name: int(sum(c for _, c in pts))
            for (p, name), pts in sorted(probe.instants.items())
            if p == prefix
        }
        # depth-at-publish histogram: the empirical fill distribution a
        # capacity advisor projects overflow probabilities from.
        fill_hist = None
        if len(all_depths):
            hi = max(int(np.max(all_depths)), 1)
            counts, bucket_edges = np.histogram(
                all_depths, bins=min(32, hi + 1), range=(0, hi + 1)
            )
            fill_hist = {
                "edges": [float(e) for e in bucket_edges],
                "counts": [int(c) for c in counts],
                "samples": int(len(all_depths)),
            }
        queues[prefix] = {
            "capacity": int(capacity),
            "variant": variant,
            "depth": depth,
            "highwater": highwater,
            "highwater_frac": round(highwater / capacity, 6) if capacity else 0.0,
            "max_raw_index": int(max_raw),
            "fill_frac": round(max_raw / capacity, 6) if capacity else 0.0,
            "dna_wait": summarize(probe.waits.get(prefix, [])),
            "proxy": proxy,
            "instants": instants,
            "starved_watches": probe.pending_watches(prefix),
            "fill_hist": fill_hist,
        }
        links = probe.segment_links.get(prefix, [])
        releases = probe.segment_releases.get(prefix, [])
        if links or releases:
            ev = sorted(
                [(c, 1) for c, _, _ in links]
                + [(c, -1) for c, _, _ in releases]
            )
            live, peak, series = 0, 0, []
            for c, d in ev:
                live += d
                peak = max(peak, live)
                series.append((c, live))
            queues[prefix]["grow"] = {
                "segment_links": len(links),
                "segment_releases": len(releases),
                "peak_linked_segments": peak,
                "live_segments": _sample_steps(series, edges),
            }
        spills = probe.spills.get(prefix, [])
        reinjects = probe.reinjects.get(prefix, [])
        if spills or reinjects:
            ev = sorted(
                [(c, n) for c, n in spills]
                + [(c, -n) for c, n in reinjects]
            )
            odepth, opeak, series = 0, 0, []
            for c, d in ev:
                odepth += d
                opeak = max(opeak, odepth)
                series.append((c, odepth))
            queues[prefix]["spill"] = {
                "spilled": int(sum(n for _, n in spills)),
                "reinjected": int(sum(n for _, n in reinjects)),
                "peak_overflow_depth": opeak,
                "overflow_depth": _sample_steps(series, edges),
                "spill_burst": summarize([n for _, n in spills]),
            }

    # ---------------- scheduler ----------------
    par = _sample_steps(probe.parallelism, edges)
    scheduler = {
        "parallelism": par,
        "peak_parallelism": (
            int(max(v for _, v in probe.parallelism))
            if probe.parallelism
            else 0
        ),
    }

    return {
        "device": dev_name,
        "cycles": int(probe.cycles),
        "n_wavefronts": int(probe.n_wavefronts),
        "wavefront_size": int(getattr(dev, "wavefront_size", 0) or 0),
        "bins": bins,
        "bin_cycles": int(bin_cycles),
        "engine": engine,
        "atomics": atomics,
        "queues": queues,
        "scheduler": scheduler,
        "truncated": bool(probe.truncated),
        "n_events": int(probe.n_events),
    }
