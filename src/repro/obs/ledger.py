"""The run ledger: an append-only index of every harness/bench run.

``BENCH_engine.json`` is one hand-committed snapshot; the ledger is the
*history*.  Every harness or bench invocation records a **manifest** —
what was run (argv, config, config hash), where (git SHA, python,
platform), how long it took, and its headline metrics (simulated
cycles, launch counts, per-experiment wall times, registry totals) —
as one JSON file under ``results/ledger/`` plus one line in
``index.jsonl``.  Entries are queryable with::

    python -m repro.harness runs list
    python -m repro.harness runs show last
    python -m repro.harness runs diff <A> <B>
    python -m repro.harness runs report -n 10

``runs diff`` feeds two entries' metrics through
:mod:`repro.obs.regress`, which is also what the CI regression gate
(``tools/bench_diff.py``) uses — so a perf or simulated-cycle-count
regression between two recorded runs is one command to find.

Simulated metrics are deterministic for a given config, so two entries
with equal ``config_hash`` should agree exactly on every ``sim.*`` and
``queue.*`` metric; wall-clock metrics are machine-dependent and only
gated within tolerance.  The ledger root defaults to
``results/ledger`` and can be moved with the ``REPRO_LEDGER``
environment variable (tests point it at a tmp dir).
"""

from __future__ import annotations

import hashlib
import json
import os
import platform
import subprocess
import time
from pathlib import Path
from typing import Dict, List, Optional, Union

#: ledger entry schema version.
SCHEMA = 1

#: default ledger root, overridable via the environment.
DEFAULT_DIR = "results/ledger"
ENV_VAR = "REPRO_LEDGER"


def default_root() -> Path:
    return Path(os.environ.get(ENV_VAR) or DEFAULT_DIR)


def config_hash(config: Dict) -> str:
    """Stable hex digest of a canonicalized config dict."""
    canon = json.dumps(config, sort_keys=True, separators=(",", ":"),
                       default=str)
    return hashlib.sha256(canon.encode()).hexdigest()


def git_sha(cwd: Optional[Union[str, Path]] = None) -> Optional[str]:
    """The checked-out commit, or None outside a git work tree."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=cwd, capture_output=True, text=True, timeout=10,
        )
    except (OSError, subprocess.TimeoutExpired):
        return None
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else None


class LedgerError(Exception):
    """Lookup/record failures surfaced to the CLI."""


class Ledger:
    """One ledger directory: ``<root>/<run_id>.json`` + ``index.jsonl``."""

    def __init__(self, root: Optional[Union[str, Path]] = None):
        self.root = Path(root) if root is not None else default_root()

    @property
    def index_path(self) -> Path:
        return self.root / "index.jsonl"

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------
    def record(
        self,
        kind: str,
        config: Dict,
        metrics: Dict[str, Union[int, float]],
        wall_seconds: float,
        argv: Optional[List[str]] = None,
        registry_snapshot: Optional[Dict] = None,
        seed: Optional[int] = None,
        notes: Optional[str] = None,
        created: Optional[float] = None,
        job_id: Optional[str] = None,
    ) -> Dict:
        """Write one manifest; returns the recorded entry dict.

        ``kind`` tags the producer (``"harness"``, ``"bench_engine"``,
        ``"serve"``); ``config`` is the full knob set (hashed into
        ``config_hash`` so runs are comparable only when their configs
        match); ``metrics`` is a flat ``name -> number`` dict — the
        diffable surface.  ``job_id`` records the scheduler-service job
        that submitted the run (``None`` for direct CLI invocations):
        ``jobs``-style knobs stay out of the hashed config, so a
        service-run entry and a CLI-run entry of the same spec share a
        ``config_hash`` and ``runs diff`` compares them exactly.
        """
        created = time.time() if created is None else created
        chash = config_hash(config)
        stamp = time.strftime("%Y%m%dT%H%M%SZ", time.gmtime(created))
        run_id = f"{stamp}-{chash[:8]}"
        self.root.mkdir(parents=True, exist_ok=True)
        suffix = 1
        while (self.root / f"{run_id}.json").exists():
            suffix += 1
            run_id = f"{stamp}-{chash[:8]}-{suffix}"
        entry = {
            "schema": SCHEMA,
            "run_id": run_id,
            "kind": kind,
            "created": time.strftime(
                "%Y-%m-%dT%H:%M:%SZ", time.gmtime(created)
            ),
            "argv": list(argv) if argv is not None else None,
            "git_sha": git_sha(),
            "python": platform.python_version(),
            "platform": platform.platform(),
            "seed": seed,
            "job_id": job_id,
            "config": config,
            "config_hash": chash,
            "wall_seconds": round(float(wall_seconds), 3),
            "metrics": {k: metrics[k] for k in sorted(metrics)},
            "notes": notes,
        }
        if registry_snapshot is not None:
            entry["registry"] = registry_snapshot
        (self.root / f"{run_id}.json").write_text(
            json.dumps(entry, indent=1, default=str) + "\n"
        )
        # the index line is the entry minus its bulky payloads
        index_line = {
            k: entry[k]
            for k in ("schema", "run_id", "kind", "created", "git_sha",
                      "config_hash", "wall_seconds", "job_id")
        }
        with open(self.index_path, "a") as fh:
            fh.write(json.dumps(index_line, sort_keys=True) + "\n")
        return entry

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def entries(self) -> List[Dict]:
        """Index lines, oldest first (missing ledger dir: empty list)."""
        if not self.index_path.exists():
            return []
        out = []
        for line in self.index_path.read_text().splitlines():
            if not line.strip():
                continue
            try:
                out.append(json.loads(line))
            except json.JSONDecodeError:
                continue
        return out

    def load(self, ref: str) -> Dict:
        """Resolve ``ref`` to a full entry.

        Accepts an exact run id, a unique id prefix, ``last`` (most
        recent), or ``last~N`` (N runs before the most recent).
        """
        entries = self.entries()
        if ref == "last" or ref.startswith("last~"):
            if not entries:
                raise LedgerError(f"ledger {self.root} is empty")
            back = 0
            if ref.startswith("last~"):
                try:
                    back = int(ref.split("~", 1)[1])
                except ValueError:
                    raise LedgerError(f"bad ledger ref {ref!r}") from None
            if back >= len(entries):
                raise LedgerError(
                    f"{ref!r} reaches past the {len(entries)} recorded run(s)"
                )
            run_id = entries[-1 - back]["run_id"]
        else:
            ids = [e["run_id"] for e in entries]
            exact = [i for i in ids if i == ref]
            prefixed = [i for i in ids if i.startswith(ref)]
            if exact:
                run_id = exact[0]
            elif len(prefixed) == 1:
                run_id = prefixed[0]
            elif len(prefixed) > 1:
                raise LedgerError(
                    f"ambiguous run ref {ref!r}: {', '.join(prefixed[:5])}"
                )
            else:
                # allow reading an entry file that fell out of the index
                path = self.root / f"{ref}.json"
                if path.exists():
                    return json.loads(path.read_text())
                raise LedgerError(f"no run matching {ref!r} in {self.root}")
        path = self.root / f"{run_id}.json"
        if not path.exists():
            raise LedgerError(f"index lists {run_id} but {path} is missing")
        return json.loads(path.read_text())
