"""Chrome ``trace_event`` JSON export for recorded timelines.

The output loads directly in https://ui.perfetto.dev (or
``chrome://tracing``).  One simulated cycle maps to one microsecond of
trace time, so the ruler reads in kilocycles.

Track layout (pid / tid):

* pid 1 ``engine`` — one thread per compute unit; every issued op is a
  duration ("X") slice named after its kind, with wavefront id,
  transaction count, and cycle bounds in ``args``.
* pid 2 ``wavefronts`` — one thread per wavefront; stall spans
  reconstructed by pairing each blocking issue with the wavefront's
  next wake-up, plus an instant ("i") at kernel exit.  When the probe
  is a :class:`~repro.obs.blame.BlameProbe`, flow arrows ("s"/"f")
  connect each unblocking event — the producer store or the done-flag
  raise — to the starved wavefront it released.
* pid 3 ``queues`` — counter ("C") tracks for sampled control words and
  derived depth, instants for ``empty`` / retry events.
* pid 4 ``atomics`` — one thread per buffer; each serviced batch is a
  slice whose args carry lane count, CAS failures, and address.

Everything is plain dict/list so ``json.dump`` handles it; no third-
party dependency.
"""

from __future__ import annotations

import json
from typing import Dict, List

_PID_ENGINE = 1
_PID_WAVEFRONTS = 2
_PID_QUEUES = 3
_PID_ATOMICS = 4

#: Cap on wavefront stall spans (they are the one quadratic-ish stream).
MAX_STALL_SPANS = 200_000


def _meta(pid: int, name: str, tid: int = 0, thread: str = "") -> List[Dict]:
    out = [
        {
            "ph": "M",
            "pid": pid,
            "tid": tid,
            "name": "process_name",
            "args": {"name": name},
        }
    ]
    if thread:
        out.append(
            {
                "ph": "M",
                "pid": pid,
                "tid": tid,
                "name": "thread_name",
                "args": {"name": thread},
            }
        )
    return out


def to_perfetto(probe) -> Dict:
    """Convert a finished TimelineProbe into a trace_event dict."""
    from repro.simt.engine import OP_KIND_NAMES, _K_ATOMIC, _K_READ, _K_WRITE

    events: List[Dict] = []
    events += _meta(_PID_ENGINE, "engine (CUs)")
    events += _meta(_PID_WAVEFRONTS, "wavefronts")
    events += _meta(_PID_QUEUES, "queues")
    events += _meta(_PID_ATOMICS, "atomic units")

    # ---- engine: one slice per issued op, per-CU threads --------------
    seen_cus = set()
    for cycle, cu, wf, kind, end, trans in probe.issues:
        if cu not in seen_cus:
            seen_cus.add(cu)
            events += _meta(_PID_ENGINE, "", tid=cu, thread=f"CU {cu}")
        ev = {
            "ph": "X",
            "pid": _PID_ENGINE,
            "tid": cu,
            "ts": cycle,
            "dur": max(end - cycle, 1),
            "name": OP_KIND_NAMES.get(kind, str(kind)),
            "args": {"wf": wf},
        }
        if trans:
            ev["args"]["transactions"] = trans
        events.append(ev)

    # ---- wavefronts: stall spans (blocking issue -> next wake) --------
    wakes_by_wf: Dict[int, List[int]] = {}
    for cycle, wf in probe.wakes:
        wakes_by_wf.setdefault(wf, []).append(cycle)
    cursor: Dict[int, int] = {}
    n_spans = 0
    stall_truncated = False
    for cycle, cu, wf, kind, end, trans in probe.issues:
        if kind not in (_K_READ, _K_WRITE, _K_ATOMIC):
            continue
        wl = wakes_by_wf.get(wf)
        if not wl:
            continue
        i = cursor.get(wf, 0)
        while i < len(wl) and wl[i] <= cycle:
            i += 1
        cursor[wf] = i
        if i >= len(wl):
            continue
        wake = wl[i]
        cursor[wf] = i + 1
        if wake <= cycle:
            continue
        if n_spans >= MAX_STALL_SPANS:
            stall_truncated = True
            break
        n_spans += 1
        events.append(
            {
                "ph": "X",
                "pid": _PID_WAVEFRONTS,
                "tid": wf,
                "ts": cycle,
                "dur": wake - cycle,
                "name": f"stall:{OP_KIND_NAMES.get(kind, kind)}",
                "args": {"cu": cu},
            }
        )
    for cycle, wf in probe.exits:
        events.append(
            {
                "ph": "i",
                "pid": _PID_WAVEFRONTS,
                "tid": wf,
                "ts": cycle,
                "s": "t",
                "name": "exit",
            }
        )

    # ---- blame flow arrows: unblocking event -> unblocked wavefront ---
    # Only present when the recording came from a BlameProbe: each closed
    # starvation streak with a known causal anchor draws a flow from the
    # producer's store (or the done-flag raise) to the cycle the starved
    # wavefront got going again.
    streaks = getattr(probe, "streaks", None)
    if streaks:
        flow_id = 0
        for wf in sorted(streaks):
            for s, e, dep_wf, dep_cycle, by_exit in streaks[wf]:
                if dep_cycle < 0 or dep_wf < 0:
                    continue
                flow_id += 1
                name = "done_flag" if by_exit else "token_store"
                common = {"cat": "blame", "name": name, "id": flow_id,
                          "pid": _PID_WAVEFRONTS}
                events.append(
                    {"ph": "s", "tid": dep_wf, "ts": dep_cycle, **common}
                )
                events.append(
                    {"ph": "f", "bp": "e", "tid": wf, "ts": e, **common}
                )

    # ---- queues: counters + derived depth + instants ------------------
    for (prefix, name), points in sorted(probe.counters.items()):
        for cycle, value in points:
            events.append(
                {
                    "ph": "C",
                    "pid": _PID_QUEUES,
                    "tid": 0,
                    "ts": cycle,
                    "name": f"{prefix}.{name}",
                    "args": {name: value},
                }
            )
    for prefix in sorted(probe.queues):
        front = probe.counters.get((prefix, "front"), [])
        rear = probe.counters.get((prefix, "rear"), [])
        if front and rear:
            merged = sorted(
                [(c, "f", v) for c, v in front] + [(c, "r", v) for c, v in rear]
            )
            f = r = 0
            for cycle, which, value in merged:
                if which == "f":
                    f = value
                else:
                    r = value
                events.append(
                    {
                        "ph": "C",
                        "pid": _PID_QUEUES,
                        "tid": 0,
                        "ts": cycle,
                        "name": f"{prefix}.depth",
                        "args": {"depth": max(r - f, 0)},
                    }
                )
    for (prefix, name), points in sorted(probe.instants.items()):
        for cycle, count in points:
            events.append(
                {
                    "ph": "i",
                    "pid": _PID_QUEUES,
                    "tid": 0,
                    "ts": cycle,
                    "s": "p",
                    "name": f"{prefix}.{name}",
                    "args": {"count": count},
                }
            )

    # ---- atomics: one thread per buffer, slice per batch --------------
    buf_tids: Dict[str, int] = {}
    for cycle, buf, kind, n, end, failures, addr in probe.atomics:
        tid = buf_tids.get(buf)
        if tid is None:
            tid = buf_tids[buf] = len(buf_tids)
            events += _meta(_PID_ATOMICS, "", tid=tid, thread=buf)
        ev = {
            "ph": "X",
            "pid": _PID_ATOMICS,
            "tid": tid,
            "ts": cycle,
            "dur": max(end - cycle, 1),
            "name": str(kind),
            "args": {"lanes": n},
        }
        if failures:
            ev["args"]["cas_failures"] = failures
        if addr >= 0:
            ev["args"]["addr"] = addr
        events.append(ev)

    dev = getattr(probe, "device", None)
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "device": getattr(dev, "name", None) or str(dev),
            "sim_cycles": int(probe.cycles),
            "n_wavefronts": int(probe.n_wavefronts),
            "truncated": bool(probe.truncated or stall_truncated),
            "unit": "1 trace us == 1 simulated cycle",
        },
    }


def write_trace(probe, path) -> Dict:
    """Export *probe* to trace_event JSON at *path*; returns the dict."""
    doc = to_perfetto(probe)
    with open(path, "w") as fh:
        json.dump(doc, fh)
    return doc
