"""Observability for simulated launches and whole runs.

Two layers, both passive — a probed or metered run's simulation is
bit-identical to a bare one (pinned by ``tests/test_simt_determinism.py``):

**Launch-level** (PR 2) — consumes the opt-in
:class:`~repro.simt.probe.Probe` hooks that the engine, atomic system,
queue variants, and persistent scheduler emit:

* :class:`~repro.obs.timeline.TimelineProbe` — the raw cycle-stamped
  event timeline of one launch (issue spans, wake-ups, atomic
  serialization windows, queue control-word samples, dna-wait pairs);
* :func:`~repro.obs.metrics.compute_metrics` — time-binned series
  (issue-pipe occupancy, queue depth, atomics per kcycle, wavefront
  parallelism) plus histogram summaries (dna-wait, proxy amortization,
  CAS failure bursts);
* :func:`~repro.obs.perfetto.write_trace` — a Chrome ``trace_event``
  JSON export, loadable at https://ui.perfetto.dev;
* :class:`~repro.obs.session.ProfileSession` — process-wide attachment:
  every ``Engine.launch`` in scope gets a probe, metrics are aggregated
  per launch, and reports stay byte-identical.

**Run-level** (this PR) — aggregates across launches, jobs, and whole
invocations:

* :class:`~repro.obs.registry.MetricsRegistry` /
  :class:`~repro.obs.registry.MetricsSession` — labelled counters,
  gauges, and histograms; every finished launch's ``SimStats`` lands
  here via the engine's ``METRICS_SINK`` hook, and snapshots merge
  exactly across ``--jobs N`` worker processes;
* :class:`~repro.obs.runlog.RunLog` /
  :class:`~repro.obs.runlog.LiveReporter` — schema-versioned JSONL run
  events, and ``--live`` terminal progress (stderr only);
* :class:`~repro.obs.ledger.Ledger` — the append-only run ledger under
  ``results/ledger/`` that ``python -m repro.harness runs`` queries;
* :mod:`~repro.obs.regress` — the rule-based regression sentinel behind
  ``runs diff`` and ``tools/bench_diff.py``.

**Attribution** — :mod:`~repro.obs.blame` turns recordings into causal
answers: :class:`~repro.obs.blame.BlameProbe` captures wait-for
evidence, :func:`~repro.obs.blame.build_graph` tiles each wavefront's
lifetime into classified segments, and the module extracts the
critical path, per-class blame fractions, and causal "what-if"
projections (``python -m repro.harness blame``, ``docs/blame.md``).

**Failure-time** (this PR) — observability that survives aborts and
wedges instead of requiring a completed run:

* :class:`~repro.obs.flight.FlightRecorder` /
  :class:`~repro.obs.flight.FlightSession` — bounded last-K event ring
  plus live per-queue/per-CU state; on failure the session freezes it
  into a schema-versioned ``postmortem.json``
  (``python -m repro.harness postmortem show|report``);
* :class:`~repro.obs.watchdog.LivenessWatchdog` — simulated-cycle
  no-progress detection in the engine loop, classified with the blame
  stall taxonomy, escalating warn → snapshot → abort with
  :class:`~repro.simt.errors.WedgeError`;
* :class:`~repro.obs.live.TelemetryEmitter` /
  :func:`~repro.obs.live.render_dashboard` — throttled ``snapshot``
  events in the runlog JSONL and the ``python -m repro.harness watch``
  terminal dashboard that tails them.
"""

from repro.simt.probe import Probe

from .blame import (
    BlameGraph,
    BlameProbe,
    BlameSession,
    BlameSummary,
    build_graph,
    compute_blame,
    critical_path,
    publish_blame,
    replay,
    scale_graph,
    summarize_graph,
)
from .flight import (
    FlightRecorder,
    FlightSession,
    build_postmortem,
    load_postmortem,
    render_postmortem,
    write_postmortem,
)
from .ledger import Ledger, LedgerError
from .live import TelemetryEmitter, render_dashboard, snapshot_fields
from .metrics import compute_metrics, summarize
from .perfetto import to_perfetto, write_trace
from .registry import MetricsRegistry, MetricsSession
from .regress import compare as compare_metrics
from .runlog import LiveReporter, MultiObserver, RunLog, RunObserver, read_runlog
from .session import ProfileSession
from .timeline import TimelineProbe
from .watchdog import LivenessWatchdog

__all__ = [
    "BlameGraph",
    "BlameProbe",
    "BlameSession",
    "BlameSummary",
    "FlightRecorder",
    "FlightSession",
    "Ledger",
    "LedgerError",
    "LiveReporter",
    "LivenessWatchdog",
    "MetricsRegistry",
    "MetricsSession",
    "MultiObserver",
    "Probe",
    "ProfileSession",
    "RunLog",
    "RunObserver",
    "TelemetryEmitter",
    "TimelineProbe",
    "build_graph",
    "build_postmortem",
    "compare_metrics",
    "compute_blame",
    "compute_metrics",
    "critical_path",
    "load_postmortem",
    "publish_blame",
    "read_runlog",
    "render_dashboard",
    "render_postmortem",
    "replay",
    "scale_graph",
    "snapshot_fields",
    "summarize",
    "summarize_graph",
    "to_perfetto",
    "write_postmortem",
    "write_trace",
]
