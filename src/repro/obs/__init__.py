"""Observability for simulated launches and whole runs.

Two layers, both passive — a probed or metered run's simulation is
bit-identical to a bare one (pinned by ``tests/test_simt_determinism.py``):

**Launch-level** (PR 2) — consumes the opt-in
:class:`~repro.simt.probe.Probe` hooks that the engine, atomic system,
queue variants, and persistent scheduler emit:

* :class:`~repro.obs.timeline.TimelineProbe` — the raw cycle-stamped
  event timeline of one launch (issue spans, wake-ups, atomic
  serialization windows, queue control-word samples, dna-wait pairs);
* :func:`~repro.obs.metrics.compute_metrics` — time-binned series
  (issue-pipe occupancy, queue depth, atomics per kcycle, wavefront
  parallelism) plus histogram summaries (dna-wait, proxy amortization,
  CAS failure bursts);
* :func:`~repro.obs.perfetto.write_trace` — a Chrome ``trace_event``
  JSON export, loadable at https://ui.perfetto.dev;
* :class:`~repro.obs.session.ProfileSession` — process-wide attachment:
  every ``Engine.launch`` in scope gets a probe, metrics are aggregated
  per launch, and reports stay byte-identical.

**Run-level** (this PR) — aggregates across launches, jobs, and whole
invocations:

* :class:`~repro.obs.registry.MetricsRegistry` /
  :class:`~repro.obs.registry.MetricsSession` — labelled counters,
  gauges, and histograms; every finished launch's ``SimStats`` lands
  here via the engine's ``METRICS_SINK`` hook, and snapshots merge
  exactly across ``--jobs N`` worker processes;
* :class:`~repro.obs.runlog.RunLog` /
  :class:`~repro.obs.runlog.LiveReporter` — schema-versioned JSONL run
  events, and ``--live`` terminal progress (stderr only);
* :class:`~repro.obs.ledger.Ledger` — the append-only run ledger under
  ``results/ledger/`` that ``python -m repro.harness runs`` queries;
* :mod:`~repro.obs.regress` — the rule-based regression sentinel behind
  ``runs diff`` and ``tools/bench_diff.py``.

**Attribution** — :mod:`~repro.obs.blame` turns recordings into causal
answers: :class:`~repro.obs.blame.BlameProbe` captures wait-for
evidence, :func:`~repro.obs.blame.build_graph` tiles each wavefront's
lifetime into classified segments, and the module extracts the
critical path, per-class blame fractions, and causal "what-if"
projections (``python -m repro.harness blame``, ``docs/blame.md``).
"""

from repro.simt.probe import Probe

from .blame import (
    BlameGraph,
    BlameProbe,
    BlameSession,
    BlameSummary,
    build_graph,
    compute_blame,
    critical_path,
    publish_blame,
    replay,
    scale_graph,
    summarize_graph,
)
from .ledger import Ledger, LedgerError
from .metrics import compute_metrics, summarize
from .perfetto import to_perfetto, write_trace
from .registry import MetricsRegistry, MetricsSession
from .regress import compare as compare_metrics
from .runlog import LiveReporter, MultiObserver, RunLog, RunObserver, read_runlog
from .session import ProfileSession
from .timeline import TimelineProbe

__all__ = [
    "BlameGraph",
    "BlameProbe",
    "BlameSession",
    "BlameSummary",
    "Ledger",
    "LedgerError",
    "LiveReporter",
    "MetricsRegistry",
    "MetricsSession",
    "MultiObserver",
    "Probe",
    "ProfileSession",
    "RunLog",
    "RunObserver",
    "TimelineProbe",
    "build_graph",
    "compare_metrics",
    "compute_blame",
    "compute_metrics",
    "critical_path",
    "publish_blame",
    "read_runlog",
    "replay",
    "scale_graph",
    "summarize",
    "summarize_graph",
    "to_perfetto",
    "write_trace",
]
