"""Cycle-accurate observability for simulated launches.

The simulator's scalar counters (:class:`~repro.simt.stats.SimStats`)
answer *how much*; this package answers *when*.  It consumes the opt-in
:class:`~repro.simt.probe.Probe` hooks that the engine, atomic system,
queue variants, and persistent scheduler emit, and turns them into:

* :class:`~repro.obs.timeline.TimelineProbe` — the raw cycle-stamped
  event timeline of one launch (issue spans, wake-ups, atomic
  serialization windows, queue control-word samples, dna-wait pairs);
* :func:`~repro.obs.metrics.compute_metrics` — time-binned series
  (issue-pipe occupancy, queue depth, atomics per kcycle, wavefront
  parallelism) plus histogram summaries (dna-wait, proxy amortization,
  CAS failure bursts);
* :func:`~repro.obs.perfetto.write_trace` — a Chrome ``trace_event``
  JSON export, loadable at https://ui.perfetto.dev;
* :class:`~repro.obs.session.ProfileSession` — process-wide attachment:
  every ``Engine.launch`` in scope gets a probe, metrics are aggregated
  per launch, and reports stay byte-identical (probes are passive).

Probing never changes a simulated cycle: a profiled run's ``SimStats``
and memory are bit-identical to an unprofiled run (pinned by
``tests/test_simt_determinism.py``).
"""

from repro.simt.probe import Probe

from .metrics import compute_metrics, summarize
from .perfetto import to_perfetto, write_trace
from .session import ProfileSession
from .timeline import TimelineProbe

__all__ = [
    "Probe",
    "ProfileSession",
    "TimelineProbe",
    "compute_metrics",
    "summarize",
    "to_perfetto",
    "write_trace",
]
