"""Critical-path stall attribution and causal "what-if" projection.

This module answers *why a launch took as long as it did*.  The
existing observability layers record what happened (timelines, counters,
fill histograms); :class:`BlameProbe` additionally records **wait-for
evidence** — which wavefront phase each op served, which store granted
which starved consumer, who raised the done flag — and
:func:`build_graph` compiles it into a per-wavefront **segment graph**:

* every wavefront's lifetime ``[first_issue, exit]`` is tiled by
  non-overlapping segments;
* **rigid** segments are op spans (issue to stall-end) classified by the
  scheduler/queue phase active at issue (``compute``, ``reserve``,
  ``termination``, ...).  Atomic op spans are split so the serialization
  window beyond one request's service time becomes an explicit
  ``atomic_serial`` segment;
* **elastic** segments are waits whose length is *caused elsewhere*: CU
  occupancy gaps (dependent on the op that held the issue pipe) and
  starvation streaks — runs of work cycles with zero tokens, collapsed
  into one segment depending on the producer store that eventually fed
  the wavefront (or on the done-flag raiser for the final barrier).

Because every elastic segment carries its causal anchor, the graph
supports **causal replay** (:func:`replay`): re-walk all segments in
recorded completion order with one class's durations and residuals
scaled by ``k`` and read off the projected end-to-end cycle count —
virtual speedup in the style of causal profiling (Coz).  ``k = 1``
reproduces the recorded run exactly; the replay holds the dependency
*structure* fixed (it does not re-simulate contention), the standard
causal-profiling approximation (see ``docs/blame.md``).

:func:`critical_path` walks the binding chain backward from the last
exit — through a wait's causal anchor whenever it, and not the
wavefront's own previous segment, bound the wait — and aggregates the
chain per class.  :func:`summarize_graph` packages per-class cycle
totals, per-queue detail, the critical path, and what-if projections
into a JSON-able :class:`BlameSummary`; summaries from separate worker
processes merge with :meth:`BlameSummary.merge` so blame works under
``--jobs N``.

Everything here is driven by passive probe hooks behind the usual
``probe is not None`` gate: with blame disabled the simulation is
bit-identical (pinned in ``tests/test_simt_determinism.py``).
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from .timeline import TimelineProbe

#: segment classes that are productive work rather than stall.
COMPUTE = "compute"
OTHER = "other"

#: the fixed stall taxonomy (order is the reporting order).
STALL_CLASSES = (
    "full_wait",      # queue-full release wait (circular publish)
    "dna_spin",       # data-not-arrived poll on reserved/claimed slots
    "reserve",        # slot reservation: local aggregation, AFA/CAS, copy
    "cu_occupancy",   # ready but the CU issue pipe was busy
    "atomic_serial",  # serialization window at the atomic unit
    "steal",          # cross-shard transfer path
    "termination",    # done-flag polls, in-flight accounting, final barrier
)

ALL_CLASSES = (COMPUTE,) + STALL_CLASSES + (OTHER,)

#: phase mark -> segment class (phases come from Probe.wf_phase).
_PHASE_CLASS = {
    "work": COMPUTE,
    "reserve": "reserve",
    "dna_spin": "dna_spin",
    "full_wait": "full_wait",
    "steal": "steal",
    "termination": "termination",
}


@dataclass
class Segment:
    """One tile of a wavefront's lifetime.

    ``elastic`` segments are waits; when ``dep_cycle >= 0`` the wait's
    causal anchor is cycle ``dep_cycle`` of wavefront ``dep_wf`` and the
    **residual** ``end - dep_cycle`` is the propagation delay that
    replay scales and the critical path charges.  Rigid segments (and
    anchor-less waits) simply have a scalable duration.
    """

    wf: int
    start: float
    end: float
    cls: str
    elastic: bool = False
    dep_wf: int = -1
    dep_cycle: float = -1.0
    detail: str = ""

    @property
    def dur(self) -> float:
        return self.end - self.start

    @property
    def residual(self) -> float:
        if self.elastic and self.dep_cycle >= 0:
            return self.end - self.dep_cycle
        return self.end - self.start


@dataclass
class BlameGraph:
    """Per-wavefront ordered segment lists tiling each lifetime."""

    segments: Dict[int, List[Segment]]
    #: makespan: the last recorded wavefront exit (simulated cycles).
    total: float

    def find(self, wf: int, cycle: float) -> Optional[Segment]:
        """The segment of ``wf`` containing ``cycle`` (None if outside)."""
        segs = self.segments.get(wf)
        if not segs:
            return None
        ends = [s.end for s in segs]
        i = bisect_right(ends, cycle)
        if i == len(segs):
            i -= 1
        seg = segs[i]
        # a cycle exactly on a boundary belongs to the segment it ends.
        if i > 0 and segs[i - 1].end == cycle:
            return segs[i - 1]
        if seg.start <= cycle <= seg.end:
            return seg
        return None


class BlameProbe(TimelineProbe):
    """Timeline recording plus the wait-for evidence blame needs.

    On top of :class:`TimelineProbe`'s streams this records:

    ``phase_log``
        per-wavefront ``(cycle, phase, detail)`` marks from
        :meth:`~repro.simt.probe.Probe.wf_phase`;
    ``stores``
        last producing ``(wf, cycle)`` per raw queue slot;
    ``grant_log``
        per-consumer ``(grant_cycle, producer_wf, store_cycle)`` for
        every delivered slot (producer unknown: ``(-1, -1)``, e.g.
        host-seeded tokens);
    ``streaks``
        closed starvation streaks ``(start, end, dep_wf, dep_cycle,
        by_exit)`` — maximal runs of zero-token acquire samples,
        anchored to the producer store that ended them (or the done
        event when the run ended at kernel exit);
    ``done_event``
        ``(cycle, wf)`` of the first done-flag raise;
    ``atomic_wfs``
        owning wavefront per recorded atomic batch (aligned with the
        inherited ``atomics`` stream).
    """

    def __init__(self, max_events: int = 2_000_000, on_end=None):
        super().__init__(max_events=max_events, on_end=on_end)
        self.phase_log: Dict[int, List[Tuple[int, str, str]]] = {}
        self.stores: Dict[Tuple[str, int], Tuple[int, int]] = {}
        self.grant_log: Dict[int, List[Tuple[int, int, int]]] = {}
        self.streaks: Dict[int, List[Tuple[int, int, int, int, bool]]] = {}
        self.done_event: Optional[Tuple[int, int]] = None
        self.atomic_wfs: List[int] = []
        self._streak_open: Dict[int, int] = {}
        self._grant_lo: Dict[int, int] = {}
        self._exited: Dict[int, bool] = {}

    # -- phase / scheduler evidence ------------------------------------
    def wf_phase(self, wf, phase, detail="") -> None:
        log = self.phase_log.get(wf)
        if log is None:
            log = self.phase_log[wf] = []
        elif log[-1][1] == phase and log[-1][2] == detail:
            return  # consecutive identical marks carry no information
        log.append((self.now, phase, detail))

    def sched_done(self, cycle, wf) -> None:
        if self.done_event is None:
            self.done_event = (cycle, wf)

    def sched_tokens(self, cycle, wf, n_token, wavefront_size) -> None:
        if not self._exited.get(wf):
            if n_token == 0:
                self._streak_open.setdefault(wf, cycle)
            else:
                s = self._streak_open.pop(wf, None)
                if s is not None and cycle > s:
                    self._close_streak(wf, s, cycle, by_exit=False)
        super().sched_tokens(cycle, wf, n_token, wavefront_size)

    def on_exit(self, cycle, wf) -> None:
        s = self._streak_open.pop(wf, None)
        if s is not None and cycle > s:
            self._close_streak(wf, s, cycle, by_exit=True)
        self._exited[wf] = True
        super().on_exit(cycle, wf)

    def _close_streak(self, wf: int, s: int, e: int, by_exit: bool) -> None:
        dep_wf = dep_cycle = -1
        if by_exit:
            if self.done_event is not None:
                dep_cycle, dep_wf = self.done_event
        else:
            log = self.grant_log.get(wf)
            if log:
                lo = self._grant_lo.get(wf, 0)
                i = lo
                n = len(log)
                while i < n and log[i][0] <= e:
                    _, dwf, dcy = log[i]
                    if dcy > dep_cycle:
                        dep_wf, dep_cycle = dwf, dcy
                    i += 1
                self._grant_lo[wf] = i
        self.streaks.setdefault(wf, []).append(
            (s, e, dep_wf, dep_cycle, by_exit)
        )

    # -- queue evidence -------------------------------------------------
    def queue_store(self, prefix, slots, values) -> None:
        wf, now = self.cur_wf, self.now
        stores = self.stores
        for s in slots:
            stores[(prefix, int(s))] = (wf, now)

    def queue_grant(self, prefix, slots, cycle) -> None:
        log = self.grant_log.setdefault(self.cur_wf, [])
        stores = self.stores
        for s in slots:
            rec = stores.get((prefix, int(s)))
            if rec is not None:
                log.append((cycle, rec[0], rec[1]))
            else:
                log.append((cycle, -1, -1))
        super().queue_grant(prefix, slots, cycle)

    # -- atomic evidence ------------------------------------------------
    def on_atomic(self, cycle, buf, kind, n, end, failures, addr) -> None:
        if len(self.atomics) < self.max_events:
            self.atomic_wfs.append(self.cur_wf)
        super().on_atomic(cycle, buf, kind, n, end, failures, addr)


# ----------------------------------------------------------------------
# graph construction
# ----------------------------------------------------------------------
def build_graph(probe: BlameProbe) -> BlameGraph:
    """Compile one launch recording into a :class:`BlameGraph`."""
    from repro.simt.engine import _K_ATOMIC, _K_READ, _K_WRITE

    blocking = (_K_READ, _K_WRITE, _K_ATOMIC)
    svc = int(getattr(probe.device, "atomic_service", 0) or 0)

    wakes_by_wf: Dict[int, List[int]] = {}
    for c, wf in probe.wakes:
        wakes_by_wf.setdefault(wf, []).append(c)
    exit_of = {wf: c for c, wf in probe.exits}

    atomics_by_wf: Dict[int, List[Tuple[int, int]]] = {}
    for i, wf in enumerate(probe.atomic_wfs):
        ev = probe.atomics[i]
        atomics_by_wf.setdefault(wf, []).append((ev[0], ev[4]))

    # one global scan over issues: pair blocking ops with their wake,
    # classify by the owning wavefront's current phase mark, split the
    # atomic serialization window, and remember which op held each CU's
    # issue pipe (the causal anchor of occupancy gaps).
    wake_cur: Dict[int, int] = {}
    phase_cur: Dict[int, int] = {}
    atom_cur: Dict[int, int] = {}
    cu_last: Dict[int, Tuple[int, int]] = {}
    # per wf: (start, end, cls, detail, gap_dep_wf, gap_dep_cycle)
    spans: Dict[int, List[Tuple[int, int, str, str, int, int]]] = {}

    for cycle, cu, wf, kind, end_pipe, trans in probe.issues:
        dep = cu_last.get(cu)
        cu_last[cu] = (wf, end_pipe)
        if kind in blocking:
            wl = wakes_by_wf.get(wf)
            i = wake_cur.get(wf, 0)
            end = end_pipe
            if wl is not None:
                n = len(wl)
                while i < n and wl[i] <= cycle:
                    i += 1
                if i < n:
                    end = wl[i]
                    i += 1
                wake_cur[wf] = i
        else:
            end = end_pipe
        if end <= cycle:
            end = cycle + 1 if end_pipe <= cycle else end_pipe

        log = probe.phase_log.get(wf)
        cls, detail = OTHER, ""
        if log:
            j = phase_cur.get(wf, 0)
            n = len(log)
            while j + 1 < n and log[j + 1][0] <= cycle:
                j += 1
            phase_cur[wf] = j
            if log[j][0] <= cycle:
                cls = _PHASE_CLASS.get(log[j][1], OTHER)
                detail = log[j][2]

        lst = spans.setdefault(wf, [])
        if kind == _K_ATOMIC:
            evs = atomics_by_wf.get(wf)
            k = atom_cur.get(wf, 0)
            extra = 0
            if evs is not None and k < len(evs):
                arr, aend = evs[k]
                atom_cur[wf] = k + 1
                extra = max(0, (aend - arr) - svc)
                extra = min(extra, end - cycle)
            if extra > 0:
                if end - extra > cycle:
                    lst.append((cycle, end - extra, cls, detail, *_dep(dep)))
                lst.append((end - extra, end, "atomic_serial", detail, -1, -1))
                continue
        lst.append((cycle, end, cls, detail, *_dep(dep)))

    # assemble per-wavefront tilings
    segments: Dict[int, List[Segment]] = {}
    total = 0.0
    for wf, lst in spans.items():
        exit_c = exit_of.get(wf, probe.cycles)
        segments[wf] = _tile_wavefront(
            wf, lst, probe.streaks.get(wf, []), exit_c
        )
        if exit_c > total:
            total = float(exit_c)
    return BlameGraph(segments=segments, total=total)


def _dep(dep: Optional[Tuple[int, int]]) -> Tuple[int, int]:
    return dep if dep is not None else (-1, -1)


def _tile_wavefront(
    wf: int,
    spans: List[Tuple[int, int, str, str, int, int]],
    streaks: List[Tuple[int, int, int, int, bool]],
    exit_c: int,
) -> List[Segment]:
    """Collapse starvation streaks and tile ``[t0, exit]`` with segments."""
    out: List[Segment] = []
    si = 0
    cur_streak: Optional[List] = None  # [s, e, dep_wf, dep_cycle, by_exit,
    #                                    dur-by-(cls,detail) dict]

    def flush_streak() -> None:
        nonlocal cur_streak
        if cur_streak is None:
            return
        s, e, dwf, dcy, by_exit, durs = cur_streak
        cur_streak = None
        if e <= s:
            return
        if by_exit:
            cls, detail = "termination", ""
        elif durs:
            (cls, detail) = max(durs, key=lambda kk: durs[kk])
        else:
            cls, detail = "dna_spin", ""
        out.append(
            Segment(
                wf, float(s), float(e), cls,
                elastic=True, dep_wf=dwf, dep_cycle=float(dcy),
                detail=detail,
            )
        )

    for start, end, cls, detail, gdwf, gdcy in spans:
        # open / close streaks that this span has moved past
        while cur_streak is not None and start >= cur_streak[1]:
            flush_streak()
        while (
            cur_streak is None
            and si < len(streaks)
            and streaks[si][1] <= start
        ):
            s, e, dwf, dcy, bye = streaks[si]
            si += 1
            cur_streak = [s, e, dwf, dcy, bye, {}]
            flush_streak()  # streak entirely before this span: emit as-is
        if (
            cur_streak is None
            and si < len(streaks)
            and streaks[si][0] <= start
        ):
            s, e, dwf, dcy, bye = streaks[si]
            si += 1
            cur_streak = [s, e, dwf, dcy, bye, {}]
        if cur_streak is not None and start >= cur_streak[0]:
            # span belongs to the streak: absorb it, remember what the
            # wavefront spent the streak doing (classifies the wait)
            durs = cur_streak[5]
            key = (cls, detail)
            durs[key] = durs.get(key, 0) + (end - start)
            if end > cur_streak[1]:
                cur_streak[1] = end
            continue
        out.append(
            Segment(
                wf, float(start), float(end), cls,
                elastic=False, detail=detail,
                dep_wf=gdwf, dep_cycle=float(gdcy),
            )
        )
    flush_streak()
    while si < len(streaks):
        s, e, dwf, dcy, bye = streaks[si]
        si += 1
        cur_streak = [s, e, dwf, dcy, bye, {}]
        flush_streak()

    # fill gaps (CU occupancy) and clip defensively into a clean tiling
    tiled: List[Segment] = []
    t0 = out[0].start if out else 0.0
    cur = t0
    for seg in out:
        if seg.start > cur:
            # the op span that ends the gap knows which op held the CU
            dwf, dcy = (seg.dep_wf, seg.dep_cycle) if not seg.elastic else (-1, -1.0)
            if dcy > seg.start:
                dwf, dcy = -1, -1.0
            tiled.append(
                Segment(
                    wf, cur, seg.start, "cu_occupancy",
                    elastic=True, dep_wf=dwf, dep_cycle=dcy,
                )
            )
        elif seg.start < cur:
            seg.start = cur
        if seg.end <= cur:
            continue
        if not seg.elastic:
            seg.dep_wf, seg.dep_cycle = -1, -1.0  # gap anchor, not its own
        tiled.append(seg)
        cur = seg.end
    if exit_c > cur:
        tiled.append(Segment(wf, cur, float(exit_c), OTHER))
    return tiled


# ----------------------------------------------------------------------
# causal replay (what-if projection)
# ----------------------------------------------------------------------
def replay(
    graph: BlameGraph,
    factors: Optional[Dict[str, float]] = None,
    materialize: bool = False,
):
    """Re-walk the graph with per-class scale factors.

    Processes all segments in recorded completion order, keeping a
    per-wavefront translation table from recorded to projected time.
    Rigid segments take ``dur * k``; anchored waits complete at
    ``max(own cursor, projected(anchor) + residual * k)`` — so shrinking
    a producer-side class propagates to its consumers, the essence of
    causal profiling.  With all factors 1 the projection reproduces the
    recorded timeline exactly.

    Returns the projected makespan, or ``(makespan, BlameGraph)`` with
    re-timed segments when ``materialize`` is set (used to plant
    synthetic slowdowns in tests).
    """
    k = factors or {}
    order: List[Segment] = []
    for segs in graph.segments.values():
        order.extend(segs)
    order.sort(key=lambda s: (s.end, s.start))

    os_of: Dict[int, List[float]] = {}
    ns_of: Dict[int, List[float]] = {}
    cursor: Dict[int, float] = {}
    for wf, segs in graph.segments.items():
        t0 = segs[0].start if segs else 0.0
        os_of[wf] = [t0]
        ns_of[wf] = [t0]
        cursor[wf] = t0

    def project(dwf: int, c: float) -> float:
        olist = os_of.get(dwf)
        if not olist:
            return c
        i = bisect_right(olist, c) - 1
        if i < 0:
            return ns_of[dwf][0] - (olist[0] - c)
        return ns_of[dwf][i] + (c - olist[i])

    new_segs: Dict[int, List[Segment]] = {w: [] for w in graph.segments}
    for seg in order:
        f = k.get(seg.cls, 1.0)
        ns = cursor[seg.wf]
        if seg.elastic and seg.dep_cycle >= 0:
            new_dep = project(seg.dep_wf, seg.dep_cycle)
            ne = max(ns, new_dep + (seg.end - seg.dep_cycle) * f)
        else:
            new_dep = -1.0
            ne = ns + (seg.end - seg.start) * f
        if materialize:
            new_segs[seg.wf].append(
                Segment(
                    seg.wf, ns, ne, seg.cls,
                    elastic=seg.elastic,
                    dep_wf=seg.dep_wf if new_dep >= 0 else -1,
                    dep_cycle=new_dep,
                    detail=seg.detail,
                )
            )
        os_of[seg.wf].append(seg.end)
        ns_of[seg.wf].append(ne)
        cursor[seg.wf] = ne

    total = max(cursor.values()) if cursor else 0.0
    if materialize:
        return total, BlameGraph(segments=new_segs, total=total)
    return total


def scale_graph(graph: BlameGraph, factors: Dict[str, float]) -> BlameGraph:
    """A re-timed copy of ``graph`` with ``factors`` applied (e.g.
    ``{"dna_spin": 2.0}`` plants a 2x slowdown in one stall class)."""
    _, g = replay(graph, factors, materialize=True)
    return g


# ----------------------------------------------------------------------
# critical path
# ----------------------------------------------------------------------
def critical_path(graph: BlameGraph):
    """Walk the binding chain backward from the last exit.

    At each step the walk charges the segment's class with the cycles it
    contributed to the chain, then moves to whichever predecessor bound
    the segment's completion: the wait's causal anchor (when the anchor
    fired at or after the wavefront's previous segment ended — by
    construction ``anchor + residual == end``, so an in-window anchor is
    always binding) or the wavefront's own previous segment.

    Returns ``(per_class_cycles, chain)`` where ``chain`` is the list of
    ``(segment, contribution)`` pairs from the end backward; the
    contributions sum to the chain's total length.
    """
    totals: Dict[str, float] = {}
    chain: List[Tuple[Segment, float]] = []
    if not graph.segments:
        return totals, chain

    end_wf = max(
        graph.segments,
        key=lambda w: graph.segments[w][-1].end if graph.segments[w] else 0.0,
    )
    segs = graph.segments[end_wf]
    if not segs:
        return totals, chain
    seg = segs[-1]
    cut = seg.end
    idx: Dict[int, int] = {end_wf: len(segs) - 1}
    limit = sum(len(s) for s in graph.segments.values()) * 2 + 4

    while seg is not None and limit > 0:
        limit -= 1
        wf_segs = graph.segments[seg.wf]
        i = idx[seg.wf]
        prev = wf_segs[i - 1] if i > 0 else None
        prev_end = prev.end if prev is not None else seg.start
        use_dep = (
            seg.elastic
            and seg.dep_cycle >= 0
            and seg.dep_cycle >= prev_end
            and seg.dep_cycle <= cut
            and seg.dep_wf in graph.segments
        )
        if use_dep:
            contrib = cut - seg.dep_cycle
            if contrib > 0:
                totals[seg.cls] = totals.get(seg.cls, 0.0) + contrib
                chain.append((seg, contrib))
            target = graph.find(seg.dep_wf, seg.dep_cycle)
            if target is None:
                break
            cut = seg.dep_cycle
            seg = target
            idx[seg.wf] = graph.segments[seg.wf].index(target)
            continue
        contrib = cut - seg.start
        if contrib > 0:
            totals[seg.cls] = totals.get(seg.cls, 0.0) + contrib
            chain.append((seg, contrib))
        if prev is None:
            break
        cut = seg.start
        seg = prev
        idx[seg.wf] = i - 1
    return totals, chain


# ----------------------------------------------------------------------
# summary
# ----------------------------------------------------------------------
@dataclass
class BlameSummary:
    """JSON-able aggregation of one (or several merged) launches."""

    #: makespan in simulated cycles (summed across merged launches).
    end_cycles: float = 0.0
    #: sum of wavefront lifetimes (the denominator of blame fractions).
    wf_cycles: float = 0.0
    n_wavefronts: int = 0
    launches: int = 0
    #: per-class observed cycles (tiling: sums exactly to wf_cycles).
    cycles: Dict[str, float] = field(default_factory=dict)
    #: per-class -> detail (queue prefix) -> cycles.
    by_detail: Dict[str, Dict[str, float]] = field(default_factory=dict)
    #: per-class cycles on the critical path.
    critical: Dict[str, float] = field(default_factory=dict)
    #: what-if: class -> projected makespan at k=0.5 and k=0.
    projections: Dict[str, Dict[str, float]] = field(default_factory=dict)

    def fraction(self, cls: str) -> float:
        if self.wf_cycles <= 0:
            return 0.0
        return self.cycles.get(cls, 0.0) / self.wf_cycles

    def speedup(self, cls: str, key: str = "half") -> float:
        proj = self.projections.get(cls, {}).get(key, 0.0)
        if proj <= 0:
            return 1.0
        return self.end_cycles / proj

    def merge(self, other: "BlameSummary") -> "BlameSummary":
        """Fold another launch's summary in (sequential composition:
        makespans and projections add across launches)."""
        self.end_cycles += other.end_cycles
        self.wf_cycles += other.wf_cycles
        self.n_wavefronts += other.n_wavefronts
        self.launches += other.launches
        for cls, v in other.cycles.items():
            self.cycles[cls] = self.cycles.get(cls, 0.0) + v
        for cls, det in other.by_detail.items():
            mine = self.by_detail.setdefault(cls, {})
            for d, v in det.items():
                mine[d] = mine.get(d, 0.0) + v
        for cls, v in other.critical.items():
            self.critical[cls] = self.critical.get(cls, 0.0) + v
        for cls, proj in other.projections.items():
            mine = self.projections.setdefault(cls, {})
            for kk, v in proj.items():
                mine[kk] = mine.get(kk, 0.0) + v
        return self

    def to_json(self) -> dict:
        return {
            "schema": 1,
            "end_cycles": self.end_cycles,
            "wf_cycles": self.wf_cycles,
            "n_wavefronts": self.n_wavefronts,
            "launches": self.launches,
            "cycles": dict(self.cycles),
            "by_detail": {c: dict(d) for c, d in self.by_detail.items()},
            "critical": dict(self.critical),
            "projections": {c: dict(p) for c, p in self.projections.items()},
        }

    @classmethod
    def from_json(cls, data: dict) -> "BlameSummary":
        return cls(
            end_cycles=float(data.get("end_cycles", 0.0)),
            wf_cycles=float(data.get("wf_cycles", 0.0)),
            n_wavefronts=int(data.get("n_wavefronts", 0)),
            launches=int(data.get("launches", 0)),
            cycles={k: float(v) for k, v in data.get("cycles", {}).items()},
            by_detail={
                c: {d: float(v) for d, v in det.items()}
                for c, det in data.get("by_detail", {}).items()
            },
            critical={
                k: float(v) for k, v in data.get("critical", {}).items()
            },
            projections={
                c: {k: float(v) for k, v in p.items()}
                for c, p in data.get("projections", {}).items()
            },
        )


def summarize_graph(
    graph: BlameGraph, whatif: bool = True
) -> BlameSummary:
    """Aggregate a graph into a :class:`BlameSummary`."""
    s = BlameSummary(end_cycles=graph.total, launches=1)
    s.n_wavefronts = len(graph.segments)
    for segs in graph.segments.values():
        for seg in segs:
            d = seg.dur
            s.wf_cycles += d
            s.cycles[seg.cls] = s.cycles.get(seg.cls, 0.0) + d
            if seg.detail:
                det = s.by_detail.setdefault(seg.cls, {})
                det[seg.detail] = det.get(seg.detail, 0.0) + d
    crit, _chain = critical_path(graph)
    s.critical = crit
    if whatif:
        for cls in STALL_CLASSES:
            if s.cycles.get(cls, 0.0) <= 0:
                continue
            s.projections[cls] = {
                "half": replay(graph, {cls: 0.5}),
                "zero": replay(graph, {cls: 0.0}),
            }
    return s


def compute_blame(probe: BlameProbe, whatif: bool = True) -> BlameSummary:
    """Convenience: :func:`build_graph` + :func:`summarize_graph`."""
    return summarize_graph(build_graph(probe), whatif=whatif)


# ----------------------------------------------------------------------
# metrics publication
# ----------------------------------------------------------------------
def publish_blame(summary: BlameSummary, registry) -> None:
    """Publish headline blame metrics into a
    :class:`~repro.obs.registry.MetricsRegistry` so the regression
    sentinel can gate on attribution drift (``blame.frac.*`` carries a
    wide tolerance, ``blame.cycles.*`` is exact — see
    :mod:`repro.obs.regress`)."""
    for cls in ALL_CLASSES:
        if cls not in summary.cycles:
            continue
        registry.counter(f"blame.cycles.{cls}").inc(int(summary.cycles[cls]))
        registry.gauge(f"blame.frac.{cls}").set(
            round(summary.fraction(cls), 6)
        )


# ----------------------------------------------------------------------
# recording session
# ----------------------------------------------------------------------
class BlameSession:
    """Context manager installing a :class:`BlameProbe` factory.

    While active, every ``Engine.launch`` without an explicit probe
    records blame evidence; each launch is compiled to a
    :class:`BlameSummary` in :attr:`launches` as it ends.  Use
    :meth:`merged` for the whole session.  Not re-entrant.
    """

    def __init__(
        self,
        max_events: int = 2_000_000,
        whatif: bool = True,
        keep_graphs: bool = False,
        keep_probes: bool = False,
    ):
        self.max_events = max_events
        self.whatif = whatif
        self.keep_graphs = keep_graphs
        self.keep_probes = keep_probes
        self.launches: List[BlameSummary] = []
        self.graphs: List[BlameGraph] = []
        #: raw probes (Perfetto export with flow arrows needs them).
        self.probes: List[BlameProbe] = []
        self._prev_factory = None
        self._active = False

    def _factory(self):
        return BlameProbe(max_events=self.max_events, on_end=self._collect)

    def _collect(self, probe: BlameProbe) -> None:
        graph = build_graph(probe)
        if self.keep_graphs:
            self.graphs.append(graph)
        if self.keep_probes:
            self.probes.append(probe)
        self.launches.append(summarize_graph(graph, whatif=self.whatif))

    def merged(self) -> BlameSummary:
        out = BlameSummary()
        for s in self.launches:
            out.merge(s)
        return out

    def __enter__(self) -> "BlameSession":
        if self._active:
            raise RuntimeError("BlameSession is not re-entrant")
        from repro.simt import engine as _engine

        self._prev_factory = _engine.PROBE_FACTORY
        _engine.PROBE_FACTORY = self._factory
        self._active = True
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if not self._active:
            raise RuntimeError("BlameSession exited without entering")
        from repro.simt import engine as _engine

        _engine.PROBE_FACTORY = self._prev_factory
        self._prev_factory = None
        self._active = False
