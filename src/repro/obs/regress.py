"""The regression sentinel: rule-based comparison of two metric sets.

Given two flat ``name -> number`` dicts (ledger entries' ``metrics``,
or a flattened ``BENCH_engine.json``), :func:`compare` classifies every
shared metric against a rule table and produces a
:class:`Comparison`: a per-metric delta table plus a pass/fail verdict
that CI and ``runs diff`` turn into an exit code.

Rules know two things the raw numbers don't:

* **direction** — for ``seconds`` lower is better, for ``ops_per_sec``
  higher is better;
* **rigor** — *simulated* quantities (cycles, issued ops, queue
  counters) are deterministic for a fixed config, so *any* change is a
  finding and an unfavourable change is a hard regression (``exact``);
  *wall-clock* quantities are noisy, so they only regress beyond a
  relative ``tolerance`` (the bench gate default matches
  ``bench_engine.py --guard-tolerance``: generous, to absorb shared-CI
  noise).

The first matching rule (``fnmatch`` over metric names) wins; metrics
matching no rule are reported informationally and never gate.  This
module is dependency-light on purpose — ``tools/bench_diff.py`` and the
``runs`` CLI both sit on top of it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fnmatch import fnmatchcase
from typing import Dict, List, Mapping, Optional, Sequence, Union

Number = Union[int, float]

#: wall-clock metrics only fail beyond this relative slowdown by default
#: (matches the bench_engine.py --guard-tolerance CI setting).
DEFAULT_TOLERANCE = 0.35


@dataclass(frozen=True)
class Rule:
    """How one family of metrics is judged.

    ``pattern`` is an ``fnmatch`` glob over metric names; ``better``
    names the favourable direction; ``exact`` makes any change a
    finding and any unfavourable change a regression (simulated
    quantities); otherwise a relative change beyond ``tolerance`` in
    the unfavourable direction regresses.  ``gate=False`` downgrades
    the rule to informational — deltas are shown but never fail.

    ``floor`` is an *absolute* minimum for the metric, independent of
    any baseline — checked by :func:`check_floors` (the CI
    ``bench-vector-guard`` step), not by :func:`compare`, because a
    floor judges one run on its own rather than a pair.
    """

    pattern: str
    better: str = "lower"  # "lower" | "higher"
    tolerance: float = DEFAULT_TOLERANCE
    exact: bool = False
    gate: bool = True
    floor: Optional[float] = None

    def describe(self) -> str:
        if not self.gate:
            return "info"
        if self.exact:
            return f"exact,{self.better}-better"
        desc = f"{self.better}-better±{self.tolerance:.0%}"
        if self.floor is not None:
            desc += f",floor≥{self.floor:g}"
        return desc


#: default rule table, first match wins.
DEFAULT_RULES: Sequence[Rule] = (
    # blame attribution (repro.obs.blame): fractions drift with workload
    # shape, so gate them with a wide band; cycle totals come from the
    # deterministic simulation, so any change at all is a finding.
    # These precede the generic *cycles* rule (first match wins).
    Rule("blame.frac.*", better="lower", tolerance=0.25),
    Rule("blame.*", better="lower", exact=True),
    # flight recorder overhead is a wall-clock ratio (noisy under load);
    # watchdog escalations count deterministic no-progress windows, so
    # any new trip on a previously clean config is a finding.
    Rule("flight.overhead_frac", better="lower", tolerance=0.5),
    Rule("watchdog.*", better="lower", exact=True),
    # deterministic simulated quantities: exact, and fewer is better
    Rule("*cycles*", better="lower", exact=True),
    Rule("*issued_ops*", better="lower", exact=True),
    Rule("sim.*", better="lower", exact=True),
    Rule("queue.*", better="lower", exact=True),
    Rule("scheduler.*", better="lower", exact=True),
    # vectorized-engine throughput floors (CI bench-vector-guard): the
    # values sit above the scalar reference path's locally measured
    # throughput (soup ~174k, bfs ~118k ops/s) and 2-3x below the
    # vectorized path (~480k/~457k), so losing vectorization trips the
    # floor while ordinary runner slowness does not.
    Rule("soup.ops_per_sec", better="higher", floor=200_000),
    Rule("bfs.ops_per_sec", better="higher", floor=140_000),
    # wall-clock quantities: tolerant
    Rule("*ops_per_sec*", better="higher"),
    Rule("*seconds*", better="lower"),
    Rule("*elapsed*", better="lower"),
    Rule("*wall*", better="lower"),
    # run-shape counts must not silently change
    Rule("*jobs*", gate=False),
    Rule("*experiments*", better="higher", exact=True),
)


@dataclass
class Delta:
    """One metric's comparison outcome."""

    name: str
    a: Optional[Number]
    b: Optional[Number]
    status: str  # "ok" | "improved" | "changed" | "regression" | "info" | "added" | "removed"
    rule: Optional[Rule] = None

    @property
    def rel(self) -> Optional[float]:
        """Relative change (b-a)/a, None when undefined."""
        if self.a is None or self.b is None or self.a == 0:
            return None
        return (self.b - self.a) / self.a


@dataclass
class Comparison:
    """Everything :func:`compare` found, plus the verdict."""

    deltas: List[Delta] = field(default_factory=list)
    label_a: str = "A"
    label_b: str = "B"

    @property
    def regressions(self) -> List[Delta]:
        return [d for d in self.deltas if d.status == "regression"]

    @property
    def passed(self) -> bool:
        return not self.regressions

    def render(self, only_changed: bool = False) -> str:
        """Human-readable delta table plus a verdict line."""
        from repro.harness.report import render_table

        rows = []
        for d in self.deltas:
            if only_changed and d.status == "ok":
                continue
            rel = d.rel
            rows.append(
                [
                    d.name,
                    "-" if d.a is None else d.a,
                    "-" if d.b is None else d.b,
                    "-" if rel is None else f"{rel:+.1%}",
                    d.rule.describe() if d.rule else "info",
                    d.status.upper() if d.status == "regression" else d.status,
                ]
            )
        table = render_table(
            ["metric", self.label_a, self.label_b, "delta", "rule", "status"],
            rows,
            title=f"metric deltas: {self.label_a} -> {self.label_b}",
        )
        n_reg = len(self.regressions)
        if n_reg:
            verdict = (
                f"VERDICT: FAIL — {n_reg} regression(s): "
                + ", ".join(d.name for d in self.regressions)
            )
        else:
            changed = sum(d.status != "ok" for d in self.deltas)
            verdict = f"VERDICT: PASS ({changed} non-identical metric(s))"
        return table + "\n" + verdict


def check_floors(
    metrics: Mapping[str, Number],
    rules: Sequence[Rule] = DEFAULT_RULES,
) -> Dict[str, "tuple[Number, float]"]:
    """Absolute-floor check of one metric set (no baseline needed).

    Returns ``{metric: (value, floor)}`` for every gating metric whose
    matching rule carries a ``floor`` the value sits below.  This is the
    engine behind ``tools/bench_engine.py --vector-guard`` / the CI
    ``bench-vector-guard`` step: a floor breach means the vectorized
    hot path itself degenerated (e.g. everything fell back to the
    scalar reference loop), which a baseline-relative comparison can
    miss when the baseline regressed too.
    """
    violations: Dict[str, tuple] = {}
    for name in sorted(metrics):
        rule = match_rule(name, rules)
        if rule is None or not rule.gate or rule.floor is None:
            continue
        if metrics[name] < rule.floor:
            violations[name] = (metrics[name], rule.floor)
    return violations


def match_rule(name: str, rules: Sequence[Rule]) -> Optional[Rule]:
    for rule in rules:
        if fnmatchcase(name, rule.pattern):
            return rule
    return None


def _judge(a: Number, b: Number, rule: Optional[Rule]) -> str:
    if a == b:
        return "ok"
    if rule is None or not rule.gate:
        return "info"
    worse = b > a if rule.better == "lower" else b < a
    if rule.exact:
        return "regression" if worse else "changed"
    if not worse:
        return "improved"
    base = abs(a)
    if base == 0:
        return "regression"
    return "regression" if abs(b - a) / base > rule.tolerance else "ok"


def compare(
    a: Mapping[str, Number],
    b: Mapping[str, Number],
    rules: Sequence[Rule] = DEFAULT_RULES,
    label_a: str = "A",
    label_b: str = "B",
) -> Comparison:
    """Judge metric set ``b`` (candidate) against ``a`` (baseline)."""
    cmp = Comparison(label_a=label_a, label_b=label_b)
    for name in sorted(set(a) | set(b)):
        va, vb = a.get(name), b.get(name)
        if va is None:
            cmp.deltas.append(Delta(name, None, vb, "added"))
            continue
        if vb is None:
            cmp.deltas.append(Delta(name, va, None, "removed"))
            continue
        rule = match_rule(name, rules)
        cmp.deltas.append(Delta(name, va, vb, _judge(va, vb, rule), rule))
    return cmp


def flatten_metrics(payload: Mapping, prefix: str = "") -> Dict[str, Number]:
    """Recursively flatten nested dicts to dotted numeric leaves."""
    out: Dict[str, Number] = {}
    for key, val in payload.items():
        name = f"{prefix}{key}"
        if isinstance(val, Mapping):
            out.update(flatten_metrics(val, prefix=f"{name}."))
        elif isinstance(val, bool):
            continue
        elif isinstance(val, (int, float)):
            out[name] = val
    return out


def extract_metrics(payload: Mapping) -> Dict[str, Number]:
    """Pull the comparable metric dict out of a known payload shape.

    Understands ledger entries (``{"metrics": {...}}``), bench reports
    from ``tools/bench_engine.py`` (``{"benchmarks": {...}}``), and
    falls back to flattening the whole payload.
    """
    if "metrics" in payload and isinstance(payload["metrics"], Mapping):
        return flatten_metrics(payload["metrics"])
    if "benchmarks" in payload and isinstance(payload["benchmarks"], Mapping):
        return flatten_metrics(payload["benchmarks"])
    return flatten_metrics(payload)
