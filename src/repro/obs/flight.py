"""Flight recorder: bounded last-K event ring + post-mortem bundles.

Every observability artifact before this module — timeline, blame,
ledger — is written *after* a run completes; a launch that aborts on
:class:`~repro.simt.errors.QueueFullError` or wedges leaves nothing
behind but a message.  The flight recorder is the black box: a
:class:`~repro.simt.probe.Probe` that keeps only a **bounded** window
of recent history (a ``collections.deque(maxlen=K)`` ring of engine /
queue / atomic events) plus O(queues + CUs + wavefronts) live state —
per-queue fill and fill histogram, per-CU last issue, per-wavefront
current phase, and monotonic progress counters.  Memory is constant no
matter how long the launch runs, so it can stay attached to every
launch of a multi-hour harness run (its measured overhead is gated by
``tools/bench_engine.py --guard``; see docs/observability.md).

Three consumers read the recorder:

* :class:`repro.obs.watchdog.LivenessWatchdog` polls
  :meth:`FlightRecorder.progress_signature` /
  :meth:`FlightRecorder.stall_classes` to detect and classify wedges;
* :class:`repro.obs.live.TelemetryEmitter` turns launch-end snapshots
  into runlog ``snapshot`` events for ``repro.harness watch``;
* :func:`build_postmortem` freezes :meth:`FlightRecorder.snapshot`
  into a schema-versioned ``postmortem.json`` bundle that
  ``python -m repro.harness postmortem show|report`` renders.

Like every probe, the recorder is passive: a recorded launch simulates
bit-identically to a bare one (pinned for all five queue variants in
``tests/test_simt_determinism.py``).
"""

from __future__ import annotations

import json
import os
import time
from collections import deque
from typing import Callable, Dict, List, Optional

from repro.simt.engine import OP_KIND_NAMES
from repro.simt.probe import Probe

from .blame import COMPUTE, OTHER, _PHASE_CLASS

#: schema version of :meth:`FlightRecorder.snapshot` and the
#: ``postmortem.json`` bundle built from it (bump on layout changes).
FLIGHT_SCHEMA = 1
POSTMORTEM_SCHEMA = 1

#: number of fill-histogram buckets per queue (bucket i counts samples
#: with ``fill/capacity`` in ``[i/8, (i+1)/8)``; the last is open).
FILL_BUCKETS = 8

#: default ring size: enough to reconstruct the last few scheduler
#: rounds of every wavefront without ring memory showing up in the
#: bench_engine overhead budget.
DEFAULT_RING = 256


class FlightRecorder(Probe):
    """Always-on bounded recorder of recent engine/queue/atomic events.

    ``ring`` bounds the unified event ring; everything else the
    recorder keeps is a running aggregate, so a recorder attached to a
    billion-cycle launch is no bigger than one attached to a short one.
    """

    def __init__(self, ring: int = DEFAULT_RING):
        self.ring_size = int(ring)
        #: unified last-K ring: tuples ``(cycle, kind, ...)`` where
        #: kind is one of issue/wake/exit/atomic/instant/reserve/
        #: steal/phase/abort.
        self.events: deque = deque(maxlen=self.ring_size)
        #: per-queue live state, keyed by buffer prefix.
        self.queues: Dict[str, Dict] = {}
        #: per-CU last issue: cid -> (cycle, wf, op-kind name).
        self.cus: Dict[int, tuple] = {}
        #: per-wavefront current phase: wf -> (phase, detail).
        self.wf_phases: Dict[int, tuple] = {}
        self.wf_last_issue: Dict[int, int] = {}
        self.exited: set = set()
        # monotonic progress counters (the watchdog's liveness signal)
        self.issues = 0
        self.wakes = 0
        self.exits = 0
        self.atomics = 0
        self.cas_failures = 0
        self.deliveries = 0
        self.stores = 0
        self.steals = 0
        self.work_marks = 0
        self.done_marks = 0
        self.last_delivery = -1
        self.last_store = -1
        self.last_exit = -1
        self.last_work = -1
        self.device_name = ""
        self.n_wavefronts = 0
        self.launches = 0
        self.cycles = 0  # final cycle count once the launch ends
        self.finished = False
        #: optional ``callback(self)`` fired at launch_end (telemetry).
        self.on_end: Optional[Callable[["FlightRecorder"], None]] = None

    # ------------------------------------------------------------------
    # engine callbacks
    # ------------------------------------------------------------------
    def launch_begin(self, device, n_wavefronts: int) -> None:
        self.device_name = device.name
        self.n_wavefronts = n_wavefronts
        self.launches += 1
        self.finished = False
        self.cus.clear()
        self.wf_phases.clear()
        self.wf_last_issue.clear()
        self.exited.clear()

    def launch_end(self, cycles: int, stats) -> None:
        self.cycles = cycles
        self.finished = True
        if self.on_end is not None:
            self.on_end(self)

    def on_issue(self, cycle, cu, wf, kind, end, trans) -> None:
        self.issues += 1
        name = OP_KIND_NAMES.get(kind, "?")
        self.cus[cu] = (cycle, wf, name)
        self.wf_last_issue[wf] = cycle
        self.events.append((cycle, "issue", cu, wf, name))

    def on_wake(self, cycle, wf) -> None:
        self.wakes += 1
        self.events.append((cycle, "wake", wf))

    def on_exit(self, cycle, wf) -> None:
        self.exits += 1
        self.last_exit = cycle
        self.exited.add(wf)
        self.events.append((cycle, "exit", wf))

    # ------------------------------------------------------------------
    # atomic-system callbacks
    # ------------------------------------------------------------------
    def on_atomic(self, cycle, buf, kind, n, end, failures, addr) -> None:
        self.atomics += 1
        self.cas_failures += failures
        self.events.append((cycle, "atomic", buf, kind, n, failures))

    # ------------------------------------------------------------------
    # queue-layer callbacks
    # ------------------------------------------------------------------
    def _queue(self, prefix: str) -> Dict:
        q = self.queues.get(prefix)
        if q is None:
            q = self.queues[prefix] = {
                "capacity": 0,
                "variant": "?",
                "front": 0,
                "rear": 0,
                "deliveries": 0,
                "stores": 0,
                "steals_in": 0,
                "steals_out": 0,
                "fill_hist": [0] * FILL_BUCKETS,
            }
        return q

    def queue_register(self, prefix, capacity, variant) -> None:
        q = self._queue(prefix)
        q["capacity"] = capacity
        q["variant"] = variant

    def queue_counter(self, prefix, name, cycle, value) -> None:
        q = self._queue(prefix)
        if name == "front" or name == "rear":
            q[name] = value
            cap = q["capacity"]
            if cap > 0:
                # reservation-first variants (RF/AN) let Front pass
                # Rear while lanes park on DNA slots — clamp at 0.
                fill = q["rear"] - q["front"]
                if fill < 0:
                    fill = 0
                b = (fill * FILL_BUCKETS) // cap
                if b >= FILL_BUCKETS:
                    b = FILL_BUCKETS - 1
                q["fill_hist"][b] += 1

    def queue_instant(self, prefix, name, cycle, count) -> None:
        self.events.append((cycle, "instant", prefix, name, count))

    def queue_reserve(self, prefix, direction, base, count) -> None:
        q = self._queue(prefix)
        # reservations advance the logical counters even on variants
        # that sample front/rear rarely — keep fill current from them.
        if direction == "acquire":
            if base + count > q["front"]:
                q["front"] = base + count
        else:
            if base + count > q["rear"]:
                q["rear"] = base + count
        self.events.append(
            (self.now, "reserve", prefix, direction, base, count)
        )

    def queue_store(self, prefix, slots, values) -> None:
        q = self._queue(prefix)
        n = len(slots) if hasattr(slots, "__len__") else 1
        q["stores"] += n
        self.stores += n
        self.last_store = self.now

    def queue_deliver(self, prefix, slots, tokens) -> None:
        q = self._queue(prefix)
        n = len(tokens) if hasattr(tokens, "__len__") else 1
        q["deliveries"] += n
        self.deliveries += n
        self.last_delivery = self.now

    def queue_steal(self, src_prefix, dst_prefix, src_slots, dst_base,
                    tokens) -> None:
        n = len(tokens) if hasattr(tokens, "__len__") else 1
        self.steals += n
        self._queue(src_prefix)["steals_out"] += n
        self._queue(dst_prefix)["steals_in"] += n
        self.events.append((self.now, "steal", src_prefix, dst_prefix, n))

    # ------------------------------------------------------------------
    # scheduler / blame callbacks
    # ------------------------------------------------------------------
    def sched_done(self, cycle, wf) -> None:
        self.done_marks += 1
        self.events.append((cycle, "done_flag", wf))

    def wf_phase(self, wf, phase, detail="") -> None:
        self.wf_phases[wf] = (phase, detail)
        if phase == "work":
            self.work_marks += 1
            self.last_work = self.now
        self.events.append((self.now, "phase", wf, phase, detail))

    # ------------------------------------------------------------------
    # watchdog / telemetry queries
    # ------------------------------------------------------------------
    def progress_signature(self) -> tuple:
        """Monotone counters that advance iff the launch makes progress.

        Deliveries, stores, exits, work-phase entries, and done-flag
        raises all advance only when a wavefront obtains work, hands
        work over, computes on it, or retires — *not* while spinning on
        DNA slots, full queues, reservations, or the termination flag.
        A liveness window in which this tuple does not change means
        every live wavefront spent the whole window stalled.
        """
        return (
            self.deliveries,
            self.stores,
            self.exits,
            self.work_marks,
            self.done_marks,
        )

    def stall_classes(self) -> Dict[str, int]:
        """Histogram of live wavefronts by current stall class.

        Each live (non-exited) wavefront's latest ``wf_phase`` mark is
        mapped through the PR 7 blame taxonomy
        (:data:`repro.obs.blame._PHASE_CLASS`).  A wavefront that has
        never issued at all is ready-but-unissued: ``cu_occupancy``
        (e.g. a starved CU); one issuing without phase marks is
        :data:`~repro.obs.blame.OTHER`.
        """
        hist: Dict[str, int] = {}
        for wf in range(self.n_wavefronts):
            if wf in self.exited:
                continue
            marked = self.wf_phases.get(wf)
            if marked is not None:
                cls = _PHASE_CLASS.get(marked[0], OTHER)
            elif wf not in self.wf_last_issue:
                cls = "cu_occupancy"
            else:
                cls = OTHER
            hist[cls] = hist.get(cls, 0) + 1
        return hist

    def top_stalls(self, k: int = 3) -> List[tuple]:
        """Top-``k`` ``(class, live-wavefront count)`` pairs, compute
        excluded, deterministic order (count desc, then name)."""
        hist = self.stall_classes()
        hist.pop(COMPUTE, None)
        return sorted(hist.items(), key=lambda it: (-it[1], it[0]))[:k]

    # ------------------------------------------------------------------
    # snapshot
    # ------------------------------------------------------------------
    def snapshot(self) -> Dict:
        """Schema-versioned JSON-able view of the recorder's state."""
        queues = {}
        for prefix, q in sorted(self.queues.items()):
            queues[prefix] = {
                "capacity": q["capacity"],
                "variant": q["variant"],
                "front": q["front"],
                "rear": q["rear"],
                "fill": max(0, q["rear"] - q["front"]),
                "deliveries": q["deliveries"],
                "stores": q["stores"],
                "steals_in": q["steals_in"],
                "steals_out": q["steals_out"],
                "fill_hist": list(q["fill_hist"]),
            }
        return {
            "schema": FLIGHT_SCHEMA,
            "device": self.device_name,
            "n_wavefronts": self.n_wavefronts,
            "launches": self.launches,
            "cycle": self.cycles if self.finished else self.now,
            "finished": self.finished,
            "live_wavefronts": self.n_wavefronts - len(self.exited),
            "ring_capacity": self.ring_size,
            "ring": [list(ev) for ev in self.events],
            "queues": queues,
            "cus": {
                str(cid): {"cycle": c, "wf": wf, "op": op}
                for cid, (c, wf, op) in sorted(self.cus.items())
            },
            "wf_phases": {
                str(wf): [phase, detail]
                for wf, (phase, detail) in sorted(self.wf_phases.items())
            },
            "stall_classes": self.stall_classes(),
            "progress": {
                "issues": self.issues,
                "wakes": self.wakes,
                "exits": self.exits,
                "atomics": self.atomics,
                "cas_failures": self.cas_failures,
                "deliveries": self.deliveries,
                "stores": self.stores,
                "steals": self.steals,
                "work_marks": self.work_marks,
                "done_marks": self.done_marks,
                "last_delivery": self.last_delivery,
                "last_store": self.last_store,
                "last_exit": self.last_exit,
                "last_work": self.last_work,
            },
        }


# ----------------------------------------------------------------------
# process-wide attachment
# ----------------------------------------------------------------------
class FlightSession:
    """Attach a flight recorder (and optionally a watchdog) to every
    ``Engine.launch`` in this process.

    Mirrors :class:`repro.obs.session.ProfileSession`: installs a
    :data:`repro.simt.engine.PROBE_FACTORY` on enter and restores the
    previous one on exit; with ``watchdog=True`` it also installs a
    :data:`repro.simt.engine.WATCHDOG_FACTORY` whose watchdog reads the
    *same* launch's recorder.  ``self.last`` always points at the most
    recent launch's recorder — on exit with a pending exception and a
    ``postmortem_dir``, that recorder is frozen into a
    ``postmortem.json`` bundle (the exception itself propagates).

    Not re-entrant, like the other sessions.
    """

    def __init__(
        self,
        ring: int = DEFAULT_RING,
        watchdog: bool = False,
        watchdog_opts: Optional[Dict] = None,
        postmortem_dir: Optional[str] = None,
        config: Optional[Dict] = None,
        metrics=None,
        on_launch_end: Optional[Callable[[FlightRecorder], None]] = None,
        on_watchdog: Optional[Callable[[int, str, str], None]] = None,
    ):
        self.ring = ring
        self.watchdog = watchdog
        self.watchdog_opts = dict(watchdog_opts or {})
        self.postmortem_dir = postmortem_dir
        self.config = config
        self.metrics = metrics
        self.on_launch_end = on_launch_end
        self.on_watchdog = on_watchdog
        self.last: Optional[FlightRecorder] = None
        self.postmortem_path: Optional[str] = None
        #: ``(cycle, action, classification)`` watchdog escalations seen
        #: across the session (mirrors each watchdog's own log).
        self.watchdog_events: List[tuple] = []
        self._pending_wd = None
        self._prev_probe_factory = None
        self._prev_wd_factory = None
        self._active = False

    # -- factories -----------------------------------------------------
    def _probe_factory(self):
        rec = FlightRecorder(self.ring)
        rec.on_end = self._launch_end
        self.last = rec
        if self.watchdog:
            from .watchdog import LivenessWatchdog

            self._pending_wd = LivenessWatchdog(
                rec, on_event=self._wd_event, **self.watchdog_opts
            )
        return rec

    def _wd_factory(self):
        # paired with the recorder the probe factory just built for this
        # launch; a launch given an explicit probe gets no watchdog.
        wd, self._pending_wd = self._pending_wd, None
        return wd

    # -- event sinks ---------------------------------------------------
    def _launch_end(self, rec: FlightRecorder) -> None:
        if self.metrics is not None:
            self.metrics.counter("flight.launches").inc()
        if self.on_launch_end is not None:
            self.on_launch_end(rec)

    def _wd_event(self, cycle: int, action: str, classification: str) -> None:
        self.watchdog_events.append((cycle, action, classification))
        if self.metrics is not None:
            # every escalation step corresponds to exactly one
            # no-progress window (a trip); warns are also counted apart.
            self.metrics.counter("watchdog.trips").inc()
            if action == "warn":
                self.metrics.counter("watchdog.warns").inc()
        if self.on_watchdog is not None:
            self.on_watchdog(cycle, action, classification)

    # -- context manager -----------------------------------------------
    def __enter__(self) -> "FlightSession":
        from repro.simt import engine as _engine

        if self._active:
            raise RuntimeError("FlightSession is not re-entrant")
        self._prev_probe_factory = _engine.PROBE_FACTORY
        _engine.PROBE_FACTORY = self._probe_factory
        if self.watchdog:
            self._prev_wd_factory = _engine.WATCHDOG_FACTORY
            _engine.WATCHDOG_FACTORY = self._wd_factory
        if self.metrics is not None and self.watchdog:
            # materialize the gated series at zero so healthy runs
            # record an explicit watchdog.trips = 0 in the ledger.
            self.metrics.counter("watchdog.trips").inc(0)
            self.metrics.counter("watchdog.warns").inc(0)
        self._active = True
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        from repro.simt import engine as _engine

        if not self._active:
            raise RuntimeError(
                "FlightSession.__exit__ without a matching __enter__"
            )
        _engine.PROBE_FACTORY = self._prev_probe_factory
        self._prev_probe_factory = None
        if self.watchdog:
            _engine.WATCHDOG_FACTORY = self._prev_wd_factory
            self._prev_wd_factory = None
        self._pending_wd = None
        self._active = False
        if exc is not None and self.postmortem_dir and self.last is not None:
            bundle = build_postmortem(
                recorder=self.last, error=exc, config=self.config
            )
            self.postmortem_path = write_postmortem(
                bundle, self.postmortem_dir
            )
        # never suppress the exception: the bundle is a side artifact.


# ----------------------------------------------------------------------
# post-mortem bundles
# ----------------------------------------------------------------------
def build_postmortem(
    recorder: Optional[FlightRecorder] = None,
    error: Optional[BaseException] = None,
    config: Optional[Dict] = None,
    extra: Optional[Dict] = None,
) -> Dict:
    """Freeze failure context into a schema-versioned JSON-able bundle.

    ``recorder`` contributes the ring contents, queue fill histograms
    and blame (stall-class) snapshot; ``error`` the exception identity
    plus any structured fields (:class:`QueueFullError` capacity/fill,
    :class:`WedgeError` classification and watchdog snapshot);
    ``config`` is hashed with the run ledger's
    :func:`~repro.obs.ledger.config_hash` so a bundle can be matched to
    the ledger entry of the run that produced it.
    """
    from repro.simt.errors import QueueFullError, WedgeError

    from .ledger import config_hash

    bundle: Dict = {
        "schema": POSTMORTEM_SCHEMA,
        "written_at": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "config": config,
        "config_hash": config_hash(config) if config is not None else None,
    }
    if error is not None:
        err: Dict = {
            "type": type(error).__name__,
            "message": str(error),
        }
        if isinstance(error, QueueFullError):
            err["queue_full"] = error.info()
        if isinstance(error, WedgeError):
            err["classification"] = error.classification
            if error.snapshot is not None:
                bundle["wedge_snapshot"] = error.snapshot
        bundle["error"] = err
    else:
        bundle["error"] = None
    bundle["flight"] = recorder.snapshot() if recorder is not None else None
    if extra:
        bundle.update(extra)
    return bundle


def write_postmortem(bundle: Dict, out_dir: str) -> str:
    """Write ``bundle`` under ``out_dir`` and return its path."""
    os.makedirs(out_dir, exist_ok=True)
    stamp = time.strftime("%Y%m%d-%H%M%S")
    path = os.path.join(out_dir, f"postmortem-{stamp}.json")
    i = 1
    while os.path.exists(path):
        path = os.path.join(out_dir, f"postmortem-{stamp}-{i}.json")
        i += 1
    with open(path, "w") as fh:
        json.dump(bundle, fh, indent=1, sort_keys=True)
        fh.write("\n")
    return path


def load_postmortem(path: str) -> Dict:
    """Read a bundle back, validating its schema version."""
    with open(path) as fh:
        bundle = json.load(fh)
    schema = bundle.get("schema")
    if schema != POSTMORTEM_SCHEMA:
        raise ValueError(
            f"unsupported postmortem schema {schema!r} "
            f"(this build reads schema {POSTMORTEM_SCHEMA})"
        )
    return bundle


def _bar(frac: float, width: int = 20) -> str:
    n = int(round(max(0.0, min(1.0, frac)) * width))
    return "#" * n + "." * (width - n)


def render_postmortem(bundle: Dict) -> str:
    """Human-readable rendering (``harness postmortem show``)."""
    lines: List[str] = []
    lines.append(f"postmortem (schema {bundle.get('schema')}) "
                 f"written {bundle.get('written_at')}")
    err = bundle.get("error")
    if err:
        lines.append(f"error: {err.get('type')}: {err.get('message')}")
        qf = err.get("queue_full")
        if qf:
            shard = qf.get("shard")
            lines.append(
                f"  queue {qf.get('queue')!r} fill {qf.get('fill')}/"
                f"{qf.get('capacity')}"
                + (f" shard {shard}" if shard is not None else "")
            )
        if err.get("classification"):
            lines.append(f"  watchdog classification: "
                         f"{err['classification']}")
    else:
        lines.append("error: none recorded")
    if bundle.get("config_hash"):
        lines.append(f"config hash: {bundle['config_hash']}")
    flight = bundle.get("flight")
    if flight:
        lines.append(
            f"launch: device={flight.get('device')} "
            f"wavefronts={flight.get('n_wavefronts')} "
            f"live={flight.get('live_wavefronts')} "
            f"cycle={flight.get('cycle')}"
        )
        queues = flight.get("queues") or {}
        if queues:
            lines.append("queues:")
            for prefix, q in sorted(queues.items()):
                cap = q.get("capacity") or 0
                fill = q.get("fill", 0)
                frac = fill / cap if cap else 0.0
                lines.append(
                    f"  {prefix:12s} [{_bar(frac)}] {fill}/{cap} "
                    f"({q.get('variant')}) deliveries={q.get('deliveries')}"
                    f" stores={q.get('stores')}"
                )
                hist = q.get("fill_hist")
                if hist and sum(hist) > 0:
                    total = sum(hist)
                    cells = " ".join(
                        f"{100 * h // total:3d}" for h in hist
                    )
                    lines.append(f"  {'':12s} fill% histogram: {cells}")
        stalls = flight.get("stall_classes") or {}
        if stalls:
            top = sorted(stalls.items(), key=lambda it: (-it[1], it[0]))
            lines.append(
                "stall classes (live wavefronts): "
                + ", ".join(f"{c}={n}" for c, n in top)
            )
        ring = flight.get("ring") or []
        if ring:
            lines.append(f"last {min(len(ring), 15)} of {len(ring)} "
                         f"ring events:")
            for ev in ring[-15:]:
                lines.append("  " + " ".join(str(x) for x in ev))
    else:
        lines.append("no flight recording attached")
    return "\n".join(lines)
