"""Structured run logging and live progress for multi-job harness runs.

A long ``python -m repro.harness all --jobs N`` run used to be silent
until it finished.  This module gives every run two streams:

* :class:`RunLog` — a schema-versioned **JSONL event log** (one JSON
  object per line): ``run_started``, ``job_started`` / ``job_finished``,
  ``warning``, ``abort``, ``metrics`` snapshots, ``run_finished``.
  Machine-readable, append-only, cheap enough to always be on.
* :class:`LiveReporter` — a terminal **progress stream** (jobs done /
  failed, current workload, ETA) for ``--live``.  It writes to stderr,
  so the stdout reports — and everything ``--out`` saves — stay
  byte-identical with or without it.

Both implement the :class:`RunObserver` protocol that
:func:`repro.harness.experiments.run_many` drives; ``observer=None``
(the default) keeps the driver on its original zero-overhead path.

Event schema (``SCHEMA = 1``)
-----------------------------
Every line carries ``schema``, ``event``, and ``ts`` (Unix seconds);
the rest is per-event:

``run_started``   ``ids`` (experiment ids), ``groups``, ``jobs``
``job_started``   ``job`` ("tab3+tab4"), ``index``, ``total``
``job_finished``  ``job``, ``index``, ``total``, ``elapsed_s``, ``ok``,
                  optional ``error``
``warning``       ``message``
``abort``         ``reason`` (queue-full and other kernel aborts)
``metrics``       ``snapshot`` (a registry snapshot, see
                  :mod:`repro.obs.registry`)
``run_finished``  ``elapsed_s``, ``ok``

Readers must ignore unknown event types and unknown fields; a reader
that sees a *newer* ``schema`` than it understands should warn and
skip, which :func:`read_runlog` does.
"""

from __future__ import annotations

import json
import sys
import time
from pathlib import Path
from typing import Dict, List, Optional, TextIO, Union

#: JSONL event schema version (bump on incompatible changes).
SCHEMA = 1


class RunObserver:
    """No-op progress hooks driven by ``run_many`` (subclass as needed)."""

    def run_started(self, ids: List[str], groups: List[List[str]], jobs: int) -> None:
        """The driver is about to run ``groups`` over ``jobs`` workers."""

    def job_started(self, job: str, index: int, total: int) -> None:
        """Scheduling group ``job`` (e.g. ``"tab3+tab4"``) started."""

    def job_finished(
        self,
        job: str,
        index: int,
        total: int,
        elapsed: float,
        error: Optional[str] = None,
    ) -> None:
        """Group ``job`` finished after ``elapsed`` seconds (parent wall)."""

    def run_finished(self, elapsed: float, ok: bool) -> None:
        """The whole run ended."""


class MultiObserver(RunObserver):
    """Fan every hook out to several observers (e.g. runlog + live)."""

    def __init__(self, *observers: RunObserver):
        self.observers = [o for o in observers if o is not None]

    def run_started(self, ids, groups, jobs) -> None:
        for o in self.observers:
            o.run_started(ids, groups, jobs)

    def job_started(self, job, index, total) -> None:
        for o in self.observers:
            o.job_started(job, index, total)

    def job_finished(self, job, index, total, elapsed, error=None) -> None:
        for o in self.observers:
            o.job_finished(job, index, total, elapsed, error)

    def run_finished(self, elapsed, ok) -> None:
        for o in self.observers:
            o.run_finished(elapsed, ok)


class RunLog(RunObserver):
    """Append-only JSONL event writer (also usable as a RunObserver).

    ``path_or_stream`` may be a filesystem path (parent directories are
    created; the file is opened lazily on the first event) or any
    writable text stream.  Each event is one flushed line, so a reader
    tailing the file sees progress while the run executes.
    """

    def __init__(self, path_or_stream: Union[str, Path, TextIO]):
        self._stream: Optional[TextIO] = None
        self._owns_stream = False
        if hasattr(path_or_stream, "write"):
            self._stream = path_or_stream  # type: ignore[assignment]
            self.path: Optional[Path] = None
        else:
            self.path = Path(path_or_stream)

    # ------------------------------------------------------------------
    def emit(self, event: str, **fields) -> Dict:
        """Write one event line; returns the emitted record."""
        record = {"schema": SCHEMA, "event": event, "ts": round(time.time(), 3)}
        record.update(fields)
        if self._stream is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._stream = open(self.path, "a")
            self._owns_stream = True
        self._stream.write(json.dumps(record, sort_keys=True) + "\n")
        self._stream.flush()
        return record

    def close(self) -> None:
        if self._owns_stream and self._stream is not None:
            self._stream.close()
            self._stream = None
            self._owns_stream = False

    # -- RunObserver ----------------------------------------------------
    def run_started(self, ids, groups, jobs) -> None:
        self.emit("run_started", ids=list(ids),
                  groups=["+".join(g) for g in groups], jobs=jobs)

    def job_started(self, job, index, total) -> None:
        self.emit("job_started", job=job, index=index, total=total)

    def job_finished(self, job, index, total, elapsed, error=None) -> None:
        fields = dict(job=job, index=index, total=total,
                      elapsed_s=round(elapsed, 3), ok=error is None)
        if error is not None:
            fields["error"] = error
        self.emit("job_finished", **fields)

    def run_finished(self, elapsed, ok) -> None:
        self.emit("run_finished", elapsed_s=round(elapsed, 3), ok=ok)

    # -- convenience event emitters ------------------------------------
    def warning(self, message: str) -> None:
        self.emit("warning", message=message)

    def abort(self, reason: str) -> None:
        """A kernel abort surfaced to the host (e.g. queue-full)."""
        self.emit("abort", reason=reason)

    def metrics(self, snapshot: Dict) -> None:
        self.emit("metrics", snapshot=snapshot)


def read_runlog(path: Union[str, Path]) -> List[Dict]:
    """Parse a JSONL run log, skipping lines newer than this reader.

    Unknown event types are kept (callers filter); lines whose
    ``schema`` is greater than :data:`SCHEMA` are dropped with a
    warning on stderr, so old readers degrade instead of crashing.
    """
    events: List[Dict] = []
    for lineno, line in enumerate(Path(path).read_text().splitlines(), 1):
        if not line.strip():
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError:
            print(f"[runlog: {path}:{lineno}: unparseable line skipped]",
                  file=sys.stderr)
            continue
        if record.get("schema", 0) > SCHEMA:
            print(
                f"[runlog: {path}:{lineno}: schema "
                f"{record.get('schema')} > {SCHEMA}; line skipped]",
                file=sys.stderr,
            )
            continue
        events.append(record)
    return events


class LiveReporter(RunObserver):
    """Streaming per-job progress for ``--live``.

    Writes single-line updates to ``stream`` (default stderr) as
    scheduling groups start and finish: jobs done/failed, the group
    that just finished, and a smoothed ETA from the mean group wall
    time so far.  Nothing is written to stdout, keeping the harness
    reports byte-identical with ``--live`` on or off.
    """

    def __init__(self, stream: Optional[TextIO] = None, clock=time.monotonic):
        self.stream = stream if stream is not None else sys.stderr
        self._clock = clock
        self._t0 = 0.0
        self.total = 0
        self.done = 0
        self.failed = 0
        self.running: List[str] = []

    def _say(self, text: str) -> None:
        print(f"[live] {text}", file=self.stream, flush=True)

    # -- RunObserver ----------------------------------------------------
    def run_started(self, ids, groups, jobs) -> None:
        self._t0 = self._clock()
        self.total = len(groups)
        self._say(
            f"{len(ids)} experiment(s) in {self.total} group(s) "
            f"over {jobs} worker(s)"
        )

    def job_started(self, job, index, total) -> None:
        self.running.append(job)
        self._say(f"started {job} ({index + 1}/{total})")

    def job_finished(self, job, index, total, elapsed, error=None) -> None:
        if job in self.running:
            self.running.remove(job)
        self.done += 1
        if error is not None:
            self.failed += 1
        status = "failed" if error is not None else "done"
        line = (
            f"{job} {status} in {elapsed:.1f}s — "
            f"{self.done}/{self.total} done, {self.failed} failed"
        )
        remaining = self.total - self.done
        if remaining > 0:
            wall = max(self._clock() - self._t0, 1e-9)
            eta = wall / self.done * remaining
            line += f", eta ~{eta:.0f}s"
            if self.running:
                line += f" — running: {', '.join(self.running)}"
        self._say(line)
        if error is not None:
            self._say(f"{job} error: {error}")

    def run_finished(self, elapsed, ok) -> None:
        verdict = "ok" if ok else "FAILED"
        self._say(
            f"run {verdict}: {self.done}/{self.total} group(s), "
            f"{self.failed} failed, {elapsed:.1f}s"
        )
