"""The recording probe: one launch's cycle-stamped event timeline.

:class:`TimelineProbe` implements every :class:`~repro.simt.probe.Probe`
hook by appending compact tuples to per-stream lists.  It performs *no*
analysis while the simulation runs — recording must stay cheap enough
that profiling a harness experiment is practical — and is consumed
afterwards by :mod:`repro.obs.metrics` and :mod:`repro.obs.perfetto`.

Streams
-------
``issues``
    ``(cycle, cu, wf, kind, end, trans)`` per issued op; ``kind`` decodes
    through :data:`repro.simt.engine.OP_KIND_NAMES`, ``end`` is the cycle
    the CU issue pipe frees, ``trans`` the coalesced transaction count.
``wakes`` / ``exits``
    ``(cycle, wf)`` — end of a memory/atomic stall, and kernel exit.
``atomics``
    ``(cycle, buf, kind, n, end, failures, addr)`` per serviced batch:
    the serialization window ``[cycle, end]`` at the address unit(s).
``counters`` / ``instants``
    ``{(prefix, name): [(cycle, value), ...]}`` — sampled control words
    (``front``/``rear``) and event bursts (``empty``, ``cas_retry``).
``proxy``
    ``{(prefix, direction): [lanes, ...]}`` — lanes served per global
    proxy atomic (the arbitrary-n amortization of §4.1).
``waits``
    ``{prefix: [cycles, ...]}`` — dna-wait per delivered slot: grant
    cycle minus the watch cycle that parked the lane on it (§4.2).
``parallelism``
    ``(cycle, total_tokens)`` — device-wide count of lanes holding task
    tokens, sampled whenever a wavefront's share changes (the wavefront-
    parallelism ramp of Figure 3, but over *time* instead of BFS level).
``segment_links`` / ``segment_releases``
    ``{prefix: [(cycle, logical_seg, phys_seg), ...]}`` — GROW segment
    hand-off (:mod:`repro.core.queue_adaptive`): pool segments linked
    into / recycled out of the logical index space.
``spills`` / ``reinjects``
    ``{prefix: [(cycle, count), ...]}`` — SPILL backpressure: token
    bursts dead-dropped into the overflow ring and re-published by the
    drain pump.

Only ``issues``, ``wakes``, and ``exits`` are unbounded in practice, so
they share the ``max_events`` cap; everything else is small.  When the
cap trips, :attr:`truncated` is set and the dropped streams stop
growing, but counters/waits keep recording so queue metrics stay whole.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from repro.simt.probe import Probe


class TimelineProbe(Probe):
    """Records the full observable timeline of one launch."""

    def __init__(
        self,
        max_events: int = 2_000_000,
        on_end: Optional[Callable[["TimelineProbe"], None]] = None,
    ):
        if max_events <= 0:
            raise ValueError("max_events must be positive")
        self.now = 0
        self.max_events = max_events
        #: called from ``launch_end`` (ProfileSession collects here).
        self.on_end = on_end

        # launch envelope
        self.device = None
        self.n_wavefronts = 0
        self.cycles = 0
        self.stats = None

        # event streams (see module docstring)
        self.issues: List[Tuple[int, int, int, int, int, int]] = []
        self.wakes: List[Tuple[int, int]] = []
        self.exits: List[Tuple[int, int]] = []
        self.atomics: List[Tuple[int, str, str, int, int, int, int]] = []
        self.counters: Dict[Tuple[str, str], List[Tuple[int, int]]] = {}
        self.instants: Dict[Tuple[str, str], List[Tuple[int, int]]] = {}
        self.proxy: Dict[Tuple[str, str], List[int]] = {}
        self.queues: Dict[str, Tuple[int, str]] = {}
        self.waits: Dict[str, List[int]] = {}
        self.parallelism: List[Tuple[int, int]] = []
        self.segment_links: Dict[str, List[Tuple[int, int, int]]] = {}
        self.segment_releases: Dict[str, List[Tuple[int, int, int]]] = {}
        self.spills: Dict[str, List[Tuple[int, int]]] = {}
        self.reinjects: Dict[str, List[Tuple[int, int]]] = {}
        self.truncated = False

        self._watch: Dict[str, Dict[int, int]] = {}
        self._wf_tokens: Dict[int, int] = {}
        self._token_total = 0

    # ------------------------------------------------------------------
    # engine
    # ------------------------------------------------------------------
    def launch_begin(self, device, n_wavefronts: int) -> None:
        self.device = device
        self.n_wavefronts = n_wavefronts

    def launch_end(self, cycles: int, stats) -> None:
        self.cycles = cycles
        self.stats = stats
        if self.on_end is not None:
            self.on_end(self)

    def on_issue(self, cycle, cu, wf, kind, end, trans) -> None:
        if len(self.issues) < self.max_events:
            self.issues.append((cycle, cu, wf, kind, end, trans))
        else:
            self.truncated = True

    def on_wake(self, cycle, wf) -> None:
        if len(self.wakes) < self.max_events:
            self.wakes.append((cycle, wf))
        else:
            self.truncated = True

    def on_exit(self, cycle, wf) -> None:
        self.exits.append((cycle, wf))
        # a wavefront only exits once the in-flight counter hit zero, so
        # its lanes hold no tokens — close out its parallelism share
        # (the last acquire-time sample predates the final completions).
        self.sched_tokens(cycle, wf, 0, 0)

    # ------------------------------------------------------------------
    # atomics
    # ------------------------------------------------------------------
    def on_atomic(self, cycle, buf, kind, n, end, failures, addr) -> None:
        if len(self.atomics) < self.max_events:
            self.atomics.append((cycle, buf, kind, n, end, failures, addr))
        else:
            self.truncated = True

    # ------------------------------------------------------------------
    # queues
    # ------------------------------------------------------------------
    def queue_register(self, prefix, capacity, variant) -> None:
        self.queues.setdefault(prefix, (capacity, variant))

    def queue_counter(self, prefix, name, cycle, value) -> None:
        self.counters.setdefault((prefix, name), []).append((cycle, value))

    def queue_instant(self, prefix, name, cycle, count) -> None:
        self.instants.setdefault((prefix, name), []).append((cycle, count))

    def queue_proxy(self, prefix, direction, lanes) -> None:
        self.proxy.setdefault((prefix, direction), []).append(int(lanes))

    def queue_watch(self, prefix, slots, cycle) -> None:
        started = self._watch.setdefault(prefix, {})
        for s in slots:
            started[int(s)] = cycle

    def queue_grant(self, prefix, slots, cycle) -> None:
        started = self._watch.get(prefix)
        waits = self.waits.setdefault(prefix, [])
        for s in slots:
            t0 = None if started is None else started.pop(int(s), None)
            # slots seeded by the host were never watched: wait unknown,
            # count it as measured-from-launch (cycle itself).
            waits.append(cycle - t0 if t0 is not None else cycle)

    # ------------------------------------------------------------------
    # adaptive capacity (GROW / SPILL)
    # ------------------------------------------------------------------
    def queue_segment_link(self, prefix, logical_seg, phys_seg, cycle) -> None:
        self.segment_links.setdefault(prefix, []).append(
            (int(cycle), int(logical_seg), int(phys_seg))
        )

    def queue_segment_release(self, prefix, logical_seg, phys_seg) -> None:
        self.segment_releases.setdefault(prefix, []).append(
            (int(self.now), int(logical_seg), int(phys_seg))
        )

    def queue_spill(self, prefix, tokens) -> None:
        self.spills.setdefault(prefix, []).append(
            (int(self.now), int(len(tokens)))
        )

    def queue_reinject(self, prefix, slots, tokens) -> None:
        self.reinjects.setdefault(prefix, []).append(
            (int(self.now), int(len(tokens)))
        )

    # ------------------------------------------------------------------
    # scheduler
    # ------------------------------------------------------------------
    def sched_tokens(self, cycle, wf, n_token, wavefront_size) -> None:
        prev = self._wf_tokens.get(wf, 0)
        if n_token != prev:
            self._wf_tokens[wf] = n_token
            self._token_total += n_token - prev
            self.parallelism.append((cycle, self._token_total))

    # ------------------------------------------------------------------
    # convenience
    # ------------------------------------------------------------------
    @property
    def n_events(self) -> int:
        """Total recorded events across the big streams."""
        return (
            len(self.issues)
            + len(self.wakes)
            + len(self.exits)
            + len(self.atomics)
        )

    def pending_watches(self, prefix: str) -> int:
        """Slots still watched at launch end (lanes that starved out)."""
        return len(self._watch.get(prefix, ()))
