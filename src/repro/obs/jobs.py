"""Job-level service metrics: queue depth, wait time, retry counts.

The scheduler service (:mod:`repro.serve`) reuses the run-level
:class:`~repro.obs.registry.MetricsRegistry` for its *job* telemetry —
one namespace (``serve.*``) alongside the ``sim.*``/``queue.*``
families the simulations publish, one snapshot format, one ``GET
/metrics`` payload:

* ``serve.queue.depth`` / ``serve.jobs.<state>`` — gauges refreshed
  from the store on every scrape (the store is the truth; gauges are
  the cached view).
* ``serve.wait_seconds`` — histogram of submit→claim latency, observed
  when a worker claims a job.  Queue pressure shows up here first.
* ``serve.exec_seconds`` — histogram of claim→outcome wall time.
* ``serve.retries`` / ``serve.timeouts`` / ``serve.cancelled`` /
  ``serve.requeued`` — counters the worker pool bumps as it drives the
  lifecycle.

Everything here is wall-clock/ops telemetry: nothing feeds back into
simulations, so service runs stay byte-identical to CLI runs.
"""

from __future__ import annotations

from typing import Dict

from .registry import MetricsRegistry

#: histogram bucket bounds for job wait/exec times (seconds).
SECONDS_BUCKETS = (
    0.1, 0.25, 0.5, 1, 2, 5, 10, 30, 60, 120, 300, 600, 1800, 3600,
)


def observe_claim(registry: MetricsRegistry, job: Dict, now: float) -> None:
    """A worker claimed ``job``: record its time spent queued."""
    submitted = job.get("submitted_at")
    if submitted is not None:
        wait = max(0.0, now - float(submitted))
        registry.histogram(
            "serve.wait_seconds", buckets=SECONDS_BUCKETS
        ).observe(wait)
    registry.counter("serve.claims").inc()


def observe_outcome(
    registry: MetricsRegistry, outcome: str, exec_seconds: float
) -> None:
    """A job attempt ended: ``done|failed|cancelled|retried|timeout|requeued``."""
    registry.counter("serve.outcomes", outcome=outcome).inc()
    if outcome in ("retried", "timeout", "cancelled", "requeued"):
        # flat aliases so dashboards need no label arithmetic
        name = {"retried": "serve.retries", "timeout": "serve.timeouts",
                "cancelled": "serve.cancelled", "requeued": "serve.requeued"}
        registry.counter(name[outcome]).inc()
    registry.histogram(
        "serve.exec_seconds", buckets=SECONDS_BUCKETS
    ).observe(max(0.0, exec_seconds))


def refresh_store_gauges(registry: MetricsRegistry, store) -> None:
    """Mirror the store's current state counts into gauges."""
    counts = store.counts()
    for state, n in counts.items():
        registry.gauge("serve.jobs", state=state).set(n)
    registry.gauge("serve.queue.depth").set(counts.get("queued", 0))


def metrics_payload(registry: MetricsRegistry, store) -> Dict:
    """The ``GET /metrics`` body: fresh gauges + registry scalars.

    ``store.total_retries()`` is reported alongside the pool's counter:
    the store value survives daemon restarts, the counter is
    this-process-only — both are useful, so both are named.
    """
    refresh_store_gauges(registry, store)
    metrics = registry.scalars()
    # scalars() skips histograms; summarize the timing families by hand
    for name, _, metric in registry.series():
        if getattr(metric, "kind", None) != "histogram" or not metric.count:
            continue
        metrics[f"{name}.count"] = metric.count
        metrics[f"{name}.mean"] = round(metric.mean, 3)
        metrics[f"{name}.max"] = metric.max
    return {
        "counts": store.counts(),
        "queue_depth": store.queue_depth(),
        "total_retries": store.total_retries(),
        "metrics": metrics,
    }
