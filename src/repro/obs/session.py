"""Process-wide probe attachment for existing entry points.

The harness (and user code) reaches the engine through several layers
— ``run_persistent_bfs``, soup drivers, experiment tables — and most of
those signatures predate observability.  :class:`ProfileSession` avoids
threading a ``probe=`` argument through all of them: while the session
is active, :data:`repro.simt.engine.PROBE_FACTORY` hands every
``Engine.launch`` in this process a fresh
:class:`~repro.obs.timeline.TimelineProbe`, and the session collects
each finished launch's metrics.

Probes are passive, so everything the wrapped code returns (reports,
stats, tables) is byte-identical to an unprofiled run.

Usage::

    with ProfileSession() as prof:
        run_persistent_bfs(...)
    prof.launches[0]["metrics"]["engine"]["occupancy"]

Not multiprocess-aware: the factory is a module global in *this*
interpreter, so run profiled experiments with ``jobs=1``.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.simt import engine as _engine

from .metrics import compute_metrics
from .timeline import TimelineProbe


class ProfileSession:
    """Attach a TimelineProbe to every launch while the session is open.

    Parameters
    ----------
    bins:
        Time-bin count handed to :func:`~repro.obs.metrics.compute_metrics`.
    max_events:
        Per-launch cap forwarded to :class:`TimelineProbe`.
    keep_timelines:
        When true, the raw probe objects are retained in
        ``launches[i]["timeline"]`` (needed for Perfetto export);
        otherwise only the reduced metrics dict is kept.
    """

    def __init__(
        self,
        bins: int = 60,
        max_events: int = 2_000_000,
        keep_timelines: bool = True,
    ):
        self.bins = bins
        self.max_events = max_events
        self.keep_timelines = keep_timelines
        #: one entry per finished launch: {"metrics": ..., "timeline": ...}
        self.launches: List[Dict] = []
        self._prev_factory = None
        self._active = False

    # ------------------------------------------------------------------
    def _collect(self, probe: TimelineProbe) -> None:
        entry: Dict = {"metrics": compute_metrics(probe, bins=self.bins)}
        if self.keep_timelines:
            entry["timeline"] = probe
        self.launches.append(entry)

    def _factory(self) -> TimelineProbe:
        return TimelineProbe(max_events=self.max_events, on_end=self._collect)

    # ------------------------------------------------------------------
    def __enter__(self) -> "ProfileSession":
        if self._active:
            raise RuntimeError("ProfileSession is not re-entrant")
        self._prev_factory = _engine.PROBE_FACTORY
        _engine.PROBE_FACTORY = self._factory
        self._active = True
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if not self._active:
            # restoring PROBE_FACTORY from a never-entered session would
            # clobber whatever another session installed in the meantime.
            raise RuntimeError("ProfileSession exited without being entered")
        _engine.PROBE_FACTORY = self._prev_factory
        self._prev_factory = None
        self._active = False

    # ------------------------------------------------------------------
    @property
    def last(self) -> Optional[Dict]:
        """The most recent launch entry, or None."""
        return self.launches[-1] if self.launches else None

    def total_cycles(self) -> int:
        """Sum of simulated cycles across collected launches."""
        return sum(e["metrics"]["cycles"] for e in self.launches)
