"""Run-level metrics registry: counters, gauges, histograms with labels.

Where :mod:`repro.obs.timeline` answers *when inside one launch*, this
module answers *how much across a whole run* — possibly many launches,
possibly spread over ``--jobs N`` worker processes.  It generalizes the
ad-hoc ``SimStats.custom`` plumbing into one mergeable, snapshot-able
interface:

* every metric is a (name, labels) family — ``reg.counter("sim.cycles",
  device="Fiji")`` and the same name with ``device="Spectre"`` are two
  series of one family;
* **counters** accumulate, **gauges** hold the last written value,
  **histograms** bucket observations (fixed power-of-two-ish bounds, so
  merging is exact);
* :meth:`MetricsRegistry.snapshot` emits a schema-versioned plain dict
  and :meth:`MetricsRegistry.merge` folds another registry *or* a
  snapshot back in — worker processes snapshot their local registry and
  the parent merges, which is how ``run_many`` aggregates across jobs;
* :meth:`MetricsRegistry.ingest_simstats` maps a finished launch's
  :class:`~repro.simt.stats.SimStats` (engine counters plus the
  ``queue.*`` / ``scheduler.*`` custom counters the queue variants and
  persistent scheduler publish) into registry counters, so every layer
  of the simulator lands in the same namespace.

Attachment mirrors the probe design: the engine owns a module-global
:data:`repro.simt.engine.METRICS_SINK` callable (no dependency on this
package) and :class:`MetricsSession` installs/removes a sink that
ingests each launch.  Sinks run at *launch end*, after all simulated
state is final, so an attached registry can never perturb a simulation
— pinned by ``tests/test_simt_determinism.py``.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Tuple, Union

#: snapshot schema version (bump on incompatible layout changes).
SCHEMA = 1

#: default histogram bucket upper bounds (inclusive), open-ended tail.
DEFAULT_BUCKETS = (
    1, 2, 4, 8, 16, 32, 64, 128, 256, 512,
    1024, 4096, 16384, 65536, 262144, 1048576,
    4194304, 16777216, 67108864, 268435456,
)

LabelItems = Tuple[Tuple[str, str], ...]


def _label_key(labels: Mapping[str, object]) -> LabelItems:
    """Canonical, hashable form of a label set."""
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class Counter:
    """Monotonically accumulating value (merge: add)."""

    kind = "counter"
    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, n: Union[int, float] = 1) -> None:
        if n < 0:
            raise ValueError(f"counters only go up, got {n}")
        self.value += n

    def _merge(self, data) -> None:
        self.value += data

    def _data(self):
        return self.value


class Gauge:
    """Last-written value (merge: the merged-in value wins if set)."""

    kind = "gauge"
    __slots__ = ("value", "_set")

    def __init__(self) -> None:
        self.value = 0
        self._set = False

    def set(self, v: Union[int, float]) -> None:
        self.value = v
        self._set = True

    def _merge(self, data) -> None:
        self.set(data)

    def _data(self):
        return self.value


class Histogram:
    """Bucketed observations with exact count/sum/min/max.

    Buckets are fixed at family creation, so merging two histograms of
    one family is an element-wise bucket add — no resolution is lost
    when worker snapshots fold into the parent registry.
    """

    kind = "histogram"
    __slots__ = ("buckets", "counts", "count", "sum", "min", "max")

    def __init__(self, buckets: Tuple[Union[int, float], ...] = DEFAULT_BUCKETS):
        self.buckets = tuple(buckets)
        self.counts = [0] * (len(self.buckets) + 1)  # +1: open tail
        self.count = 0
        self.sum = 0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe(self, v: Union[int, float]) -> None:
        i = 0
        for i, bound in enumerate(self.buckets):
            if v <= bound:
                break
        else:
            i = len(self.buckets)
        self.counts[i] += 1
        self.count += 1
        self.sum += v
        self.min = v if self.min is None else min(self.min, v)
        self.max = v if self.max is None else max(self.max, v)

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def _merge(self, data) -> None:
        if tuple(data["buckets"]) != self.buckets:
            raise ValueError("cannot merge histograms with different buckets")
        self.counts = [a + b for a, b in zip(self.counts, data["counts"])]
        self.count += data["count"]
        self.sum += data["sum"]
        for field, pick in (("min", min), ("max", max)):
            other = data[field]
            if other is not None:
                mine = getattr(self, field)
                setattr(self, field, other if mine is None else pick(mine, other))

    def _data(self):
        return {
            "buckets": list(self.buckets),
            "counts": list(self.counts),
            "count": self.count,
            "sum": self.sum,
            "min": self.min,
            "max": self.max,
        }


_KINDS = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


class MetricsRegistry:
    """A process-local collection of metric families.

    Not thread-safe by design: each worker process owns its registry and
    ships a :meth:`snapshot` to the parent, which :meth:`merge`\\ s.
    """

    def __init__(self) -> None:
        #: (name) -> kind, pinned at first use so a name cannot be a
        #: counter in one worker and a gauge in another.
        self._kinds: Dict[str, str] = {}
        self._series: Dict[Tuple[str, LabelItems], object] = {}

    # ------------------------------------------------------------------
    # family accessors
    # ------------------------------------------------------------------
    def _get(self, kind: str, name: str, labels: Mapping[str, object], **kw):
        known = self._kinds.get(name)
        if known is None:
            self._kinds[name] = kind
        elif known != kind:
            raise TypeError(
                f"metric {name!r} is a {known}, requested as {kind}"
            )
        key = (name, _label_key(labels))
        metric = self._series.get(key)
        if metric is None:
            metric = _KINDS[kind](**kw)
            self._series[key] = metric
        return metric

    def counter(self, name: str, **labels) -> Counter:
        return self._get("counter", name, labels)

    def gauge(self, name: str, **labels) -> Gauge:
        return self._get("gauge", name, labels)

    def histogram(
        self,
        name: str,
        buckets: Tuple[Union[int, float], ...] = DEFAULT_BUCKETS,
        **labels,
    ) -> Histogram:
        return self._get("histogram", name, labels, buckets=buckets)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def value(self, name: str, **labels) -> Union[int, float, None]:
        """Scalar value of one counter/gauge series (None if absent)."""
        metric = self._series.get((name, _label_key(labels)))
        if metric is None:
            return None
        if isinstance(metric, Histogram):
            raise TypeError(f"{name!r} is a histogram; read it directly")
        return metric.value

    def total(self, name: str) -> Union[int, float]:
        """Sum of a counter/gauge family across all label sets."""
        return sum(
            m.value
            for (n, _), m in self._series.items()
            if n == name and not isinstance(m, Histogram)
        )

    def names(self) -> List[str]:
        return sorted(self._kinds)

    def series(self) -> Iterable[Tuple[str, LabelItems, object]]:
        for (name, labels), metric in sorted(self._series.items()):
            yield name, labels, metric

    def __len__(self) -> int:
        return len(self._series)

    # ------------------------------------------------------------------
    # snapshot / merge
    # ------------------------------------------------------------------
    def snapshot(self) -> Dict:
        """Schema-versioned plain-dict view (JSON-able, mergeable)."""
        out = []
        for (name, labels), metric in sorted(self._series.items()):
            out.append(
                {
                    "name": name,
                    "kind": metric.kind,
                    "labels": dict(labels),
                    "data": metric._data(),
                }
            )
        return {"schema": SCHEMA, "metrics": out}

    @classmethod
    def from_snapshot(cls, snap: Mapping) -> "MetricsRegistry":
        reg = cls()
        reg.merge(snap)
        return reg

    def merge(self, other: Union["MetricsRegistry", Mapping]) -> None:
        """Fold another registry or a snapshot dict into this one."""
        if isinstance(other, MetricsRegistry):
            other = other.snapshot()
        schema = other.get("schema")
        if schema != SCHEMA:
            raise ValueError(
                f"unsupported metrics snapshot schema {schema!r} "
                f"(this build reads schema {SCHEMA})"
            )
        for entry in other["metrics"]:
            kind = entry["kind"]
            if kind not in _KINDS:
                raise ValueError(f"unknown metric kind {kind!r}")
            kw = {}
            if kind == "histogram":
                kw["buckets"] = tuple(entry["data"]["buckets"])
            metric = self._get(kind, entry["name"], entry["labels"], **kw)
            metric._merge(entry["data"])

    # ------------------------------------------------------------------
    # simulator ingestion
    # ------------------------------------------------------------------
    def ingest_simstats(self, stats, **labels) -> None:
        """Publish one launch's :class:`SimStats` into the registry.

        Engine counters land under ``sim.*``; the free-form custom
        counters the queue variants (``queue.*``) and the persistent
        scheduler (``scheduler.*``) bump during the launch keep their
        dotted names.  ``sim.cycles`` is additionally observed into the
        ``sim.cycles_per_launch`` histogram so multi-launch runs keep a
        distribution, not just a total.
        """
        for name, value in stats.metric_items():
            self.counter(name, **labels).inc(value)
        self.counter("sim.launches", **labels).inc()
        self.histogram("sim.cycles_per_launch", **labels).observe(
            stats.sim_cycles
        )

    # ------------------------------------------------------------------
    def scalars(self, prefix: str = "") -> Dict[str, Union[int, float]]:
        """Flat ``name -> total`` dict of every counter/gauge family.

        Labels are summed out (counters) / last-write (gauges); the
        result is what ledger entries store as headline metrics.
        """
        out: Dict[str, Union[int, float]] = {}
        for name, _, metric in self.series():
            if isinstance(metric, Histogram):
                continue
            key = prefix + name
            if isinstance(metric, Gauge):
                out[key] = metric.value
            else:
                out[key] = out.get(key, 0) + metric.value
        return out


class MetricsSession:
    """Attach a registry to every ``Engine.launch`` in this process.

    While the session is active, each finished launch's ``SimStats`` is
    ingested into :attr:`registry` (labelled by device name).  The sink
    fires after the launch's final statistics are flushed, so the
    session is passive by construction: simulated cycles, stats, and
    memory are bit-identical with the session on or off.

    Like :class:`~repro.obs.session.ProfileSession`, the sink is a
    module global in *this* interpreter — worker processes open their
    own session and ship ``registry.snapshot()`` back to the parent.
    """

    def __init__(self, registry: Optional[MetricsRegistry] = None):
        self.registry = registry if registry is not None else MetricsRegistry()
        self._prev_sink = None
        self._active = False

    def _sink(self, device, n_wavefronts: int, stats) -> None:
        self.registry.ingest_simstats(stats, device=device.name)

    def __enter__(self) -> "MetricsSession":
        from repro.simt import engine as _engine

        if self._active:
            raise RuntimeError("MetricsSession is not re-entrant")
        self._prev_sink = _engine.METRICS_SINK
        _engine.METRICS_SINK = self._sink
        self._active = True
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        from repro.simt import engine as _engine

        if not self._active:
            raise RuntimeError(
                "MetricsSession.__exit__ without a matching __enter__"
            )
        _engine.METRICS_SINK = self._prev_sink
        self._prev_sink = None
        self._active = False
