"""Live run telemetry: runlog ``snapshot`` events + terminal dashboard.

The runlog (:mod:`repro.obs.runlog`) already streams run/job lifecycle
events, but between ``job_started`` and ``job_finished`` a multi-minute
group is a black hole.  This module fills it in two halves:

* :class:`TelemetryEmitter` — attached per worker via
  :class:`~repro.obs.flight.FlightSession`'s ``on_launch_end`` hook, it
  appends wall-clock-throttled ``snapshot`` events to the *same* runlog
  JSONL file (single flushed lines, so concurrent ``--jobs N`` workers
  interleave without tearing).  Each snapshot carries simulated
  progress, per-queue fill, steal totals and the top stall classes from
  the launch's flight recorder.

* :func:`render_dashboard` — folds a runlog event list into one
  in-terminal dashboard frame (progress bar, running groups, queue fill
  bars, steal rate, blame top-3, recent warnings).  ``python -m
  repro.harness watch <run.jsonl>`` re-reads the file on an interval
  and redraws; ``--once`` renders a single frame (the CI smoke mode).

Snapshots are a pure side channel: harness reports stay byte-identical
with telemetry on or off, like every other runlog event.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional

from .runlog import RunLog

#: minimum wall-clock seconds between snapshot events per emitter.
DEFAULT_INTERVAL = 2.0

#: queues shown per snapshot / dashboard frame (largest fill first).
MAX_QUEUES = 8


def snapshot_fields(recorder, job: str = "") -> Dict:
    """Compact JSON-able telemetry view of one flight recorder."""
    queues = sorted(
        recorder.queues.items(),
        key=lambda it: -max(0, it[1]["rear"] - it[1]["front"]),
    )[:MAX_QUEUES]
    return {
        "job": job,
        "device": recorder.device_name,
        "launches": recorder.launches,
        "cycle": recorder.cycles,
        "live_wavefronts": recorder.n_wavefronts - len(recorder.exited),
        "deliveries": recorder.deliveries,
        "stores": recorder.stores,
        "steals": recorder.steals,
        "exits": recorder.exits,
        "queues": {
            prefix: {
                "fill": max(0, q["rear"] - q["front"]),
                "capacity": q["capacity"],
            }
            for prefix, q in queues
        },
        "stalls": [[cls, n] for cls, n in recorder.top_stalls(3)],
    }


class TelemetryEmitter:
    """Throttled ``snapshot`` event writer for one worker process.

    ``path`` is the shared runlog JSONL file.  ``launch_finished`` is
    shaped to plug straight into ``FlightSession(on_launch_end=...)``:
    it emits at most one snapshot per ``interval`` wall-clock seconds,
    always from the most recent launch's recorder.  ``close`` flushes a
    final snapshot so short jobs leave at least one.
    """

    def __init__(
        self,
        path,
        job: str = "",
        interval: float = DEFAULT_INTERVAL,
        clock=time.monotonic,
    ):
        self._log = path if isinstance(path, RunLog) else RunLog(path)
        self._owns_log = not isinstance(path, RunLog)
        self.job = job
        self.interval = interval
        self._clock = clock
        self._last_emit: Optional[float] = None
        self._emitted = 0
        self._pending = None

    def launch_finished(self, recorder) -> None:
        self._pending = recorder
        t = self._clock()
        if self._last_emit is not None and t - self._last_emit < self.interval:
            return
        self.emit()
        self._last_emit = t

    def emit(self) -> None:
        """Write a snapshot from the latest recorder, if any."""
        if self._pending is None:
            return
        self._log.emit("snapshot", **snapshot_fields(self._pending, self.job))
        self._emitted += 1
        self._pending = None

    def watchdog_event(self, cycle: int, action: str, cls: str) -> None:
        """Forward a watchdog escalation as a runlog warning."""
        self._log.emit(
            "watchdog", job=self.job, cycle=cycle, action=action,
            classification=cls,
        )

    def close(self) -> None:
        self.emit()
        if self._owns_log:
            self._log.close()


# ----------------------------------------------------------------------
# dashboard rendering
# ----------------------------------------------------------------------
def _bar(frac: float, width: int = 24) -> str:
    n = int(round(max(0.0, min(1.0, frac)) * width))
    return "#" * n + "." * (width - n)


def render_dashboard(events: List[Dict], clock=time.time) -> str:
    """Fold runlog events into one dashboard frame (a plain string)."""
    started: Optional[Dict] = None
    finished: Optional[Dict] = None
    aborted: Optional[Dict] = None
    running: Dict[str, Dict] = {}
    done = failed = 0
    total = 0
    latest_snap: Dict[str, Dict] = {}
    warnings: List[str] = []
    watchdog_lines: List[str] = []
    for ev in events:
        kind = ev.get("event")
        if kind == "run_started":
            started = ev
            total = len(ev.get("groups") or []) or len(ev.get("ids") or [])
        elif kind == "job_started":
            running[ev.get("job", "?")] = ev
        elif kind == "job_finished":
            running.pop(ev.get("job", "?"), None)
            if ev.get("error"):
                failed += 1
            else:
                done += 1
        elif kind == "snapshot":
            latest_snap[ev.get("job", "")] = ev
        elif kind == "warning":
            warnings.append(str(ev.get("message", "")))
        elif kind == "watchdog":
            watchdog_lines.append(
                f"cycle {ev.get('cycle')}: {ev.get('action')} "
                f"({ev.get('classification')}) in {ev.get('job', '?')}"
            )
        elif kind == "abort":
            aborted = ev
        elif kind == "run_finished":
            finished = ev

    lines: List[str] = []
    if aborted is not None:
        status = f"ABORTED ({aborted.get('reason', '?')})"
    elif finished is not None:
        status = "DONE" if finished.get("ok") else "FAILED"
        status += f" in {finished.get('elapsed_s', '?')}s"
    elif started is not None:
        status = "RUNNING"
    else:
        status = "WAITING (no run_started yet)"
    ids = ",".join((started or {}).get("ids") or []) or "?"
    lines.append(f"run [{ids}] — {status}")
    if total:
        frac = (done + failed) / total
        lines.append(
            f"progress [{_bar(frac)}] {done + failed}/{total} groups"
            + (f"  ({failed} failed)" if failed else "")
        )
    if running:
        lines.append("running: " + ", ".join(sorted(running)))
    # latest snapshot per job, newest state wins per queue
    all_queues: Dict[str, Dict] = {}
    steals = deliveries = 0
    stall_totals: Dict[str, int] = {}
    for job, snap in sorted(latest_snap.items()):
        for prefix, q in (snap.get("queues") or {}).items():
            all_queues[prefix] = q
        steals += snap.get("steals", 0)
        deliveries += snap.get("deliveries", 0)
        for cls, n in snap.get("stalls") or []:
            stall_totals[cls] = stall_totals.get(cls, 0) + n
    if all_queues:
        lines.append("queue fill:")
        for prefix in sorted(all_queues)[:MAX_QUEUES]:
            q = all_queues[prefix]
            cap = q.get("capacity") or 0
            fill = q.get("fill", 0)
            frac = fill / cap if cap else 0.0
            lines.append(f"  {prefix:14s} [{_bar(frac)}] {fill}/{cap}")
    if latest_snap:
        lines.append(
            f"delivered {deliveries} tokens, {steals} stolen"
        )
    if stall_totals:
        top = sorted(stall_totals.items(), key=lambda it: (-it[1], it[0]))
        lines.append(
            "stall top-3: "
            + ", ".join(f"{cls}={n}" for cls, n in top[:3])
        )
    for line in watchdog_lines[-3:]:
        lines.append(f"watchdog: {line}")
    for msg in warnings[-3:]:
        lines.append(f"warning: {msg}")
    return "\n".join(lines)
