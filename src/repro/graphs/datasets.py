"""Registry of the paper's evaluation datasets (and the baselines').

Each :class:`DatasetSpec` records the *paper-size* parameters and a
``build(scale)`` recipe.  ``scale=1.0`` regenerates the full-size
stand-in; the per-dataset ``default_scale`` shrinks it so the pure-Python
simulation suite finishes in minutes (shapes are preserved — see
DESIGN.md §2 and the assertions in ``tests/test_datasets.py``).

Datasets
--------
Paper §5.2 (Tables 1-2, Figures 3-5, Tables 3-4):
    ``Synthetic``, ``gplus_combined``, ``soc-LiveJournal1``,
    ``USA-road-d.NY``, ``USA-road-d.LKS``, ``USA-road-d.USA``
CHAI comparison (Table 5):
    ``NYR_input``, ``USA-road-d.BAY``
Rodinia comparison (Table 6):
    ``graph4096``, ``graph65536``, ``graph1MW_6``
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from .csr import CSRGraph
from .generators import (
    roadmap_graph,
    rodinia_graph,
    social_graph,
    synthetic_saturating,
)


@dataclass(frozen=True)
class DatasetSpec:
    """One named dataset with a scalable generator recipe."""

    name: str
    category: str  # "synthetic" | "social" | "roadmap" | "rodinia"
    description: str
    #: paper-reported vertex count of the real dataset.
    paper_vertices: int
    #: paper-reported edge count of the real dataset.
    paper_edges: int
    #: scale the harness uses by default.
    default_scale: float
    #: generator: scale -> graph.
    builder: Callable[[float], CSRGraph]
    #: BFS source vertex.
    source: int = 0

    def build(self, scale: Optional[float] = None) -> CSRGraph:
        """Generate the stand-in graph at ``scale`` (default: harness scale)."""
        s = self.default_scale if scale is None else float(scale)
        if s <= 0:
            raise ValueError(f"scale must be positive, got {s}")
        g = self.builder(s)
        g.name = self.name
        return g


def _grid_side(paper_vertices: int, scale: float) -> int:
    """Square-grid side length reproducing ``paper_vertices * scale``."""
    return max(int(math.sqrt(paper_vertices * scale)), 8)


def _make_synthetic(scale: float) -> CSRGraph:
    n = max(int(10_485_760 * scale), 64)
    # keep the paper's plateau width (65,536 = 4^8, saturating Fiji's
    # 14,336 threads after 8 levels) whenever the scaled graph can hold
    # it; tiny test scales shrink the plateau proportionally.
    plateau = max(min(65_536, n // 8), 4)
    return synthetic_saturating(n_vertices=n, fanout=4, plateau_width=plateau)


def _make_gplus(scale: float) -> CSRGraph:
    n = max(int(107_614 * scale), 64)
    # degree scales with sqrt(scale) so the scaled graph keeps a very
    # heavy fanout without becoming a near-clique.
    avg = max(283.4 * math.sqrt(scale), 8.0)
    return social_graph(
        n, avg_degree=avg, exponent=1.9, max_degree=max(n // 2, 16), seed=7
    )


def _make_soclj(scale: float) -> CSRGraph:
    n = max(int(4_847_571 * scale), 64)
    return social_graph(
        n, avg_degree=14.2, exponent=2.3, max_degree=max(n // 3, 16), seed=11
    )


def _make_road(paper_vertices: int, seed: int) -> Callable[[float], CSRGraph]:
    def make(scale: float) -> CSRGraph:
        side = _grid_side(paper_vertices, scale)
        return roadmap_graph(side, side, seed=seed)

    return make


def _make_rodinia(paper_vertices: int, seed: int) -> Callable[[float], CSRGraph]:
    def make(scale: float) -> CSRGraph:
        n = max(int(paper_vertices * scale), 64)
        return rodinia_graph(n, avg_degree=6, seed=seed)

    return make


#: the six datasets of the paper's main evaluation (§5.2).
PAPER_DATASETS: Dict[str, DatasetSpec] = {
    "Synthetic": DatasetSpec(
        name="Synthetic",
        category="synthetic",
        description="fanout-4 saturating DAG, 10,485,760 vertices (§5.2)",
        paper_vertices=10_485_760,
        paper_edges=41_943_040,
        default_scale=1 / 20,  # 524,288 vertices, full 65,536-wide plateau
        builder=_make_synthetic,
    ),
    "gplus_combined": DatasetSpec(
        name="gplus_combined",
        category="social",
        description="SNAP Google+ circles (Table 1)",
        paper_vertices=107_614,
        paper_edges=30_494_866,
        default_scale=1 / 18,  # ~6K vertices
        builder=_make_gplus,
    ),
    "soc-LiveJournal1": DatasetSpec(
        name="soc-LiveJournal1",
        category="social",
        description="SNAP LiveJournal friendship graph (Table 1)",
        paper_vertices=4_847_571,
        paper_edges=68_993_773,
        default_scale=1 / 300,  # ~16K vertices
        builder=_make_soclj,
    ),
    "USA-road-d.NY": DatasetSpec(
        name="USA-road-d.NY",
        category="roadmap",
        description="9th DIMACS challenge, New York City roads (Table 2)",
        paper_vertices=264_346,
        paper_edges=733_846,
        default_scale=1 / 16,  # ~128x128 grid
        builder=_make_road(264_346, seed=3),
    ),
    "USA-road-d.LKS": DatasetSpec(
        name="USA-road-d.LKS",
        category="roadmap",
        description="9th DIMACS challenge, Great Lakes roads (Table 2)",
        paper_vertices=2_758_119,
        paper_edges=6_885_658,
        default_scale=1 / 64,  # ~207x207 grid
        builder=_make_road(2_758_119, seed=5),
    ),
    "USA-road-d.USA": DatasetSpec(
        name="USA-road-d.USA",
        category="roadmap",
        description="9th DIMACS challenge, full USA roads (Table 2)",
        paper_vertices=23_947_347,
        paper_edges=58_333_344,
        default_scale=1 / 256,  # ~305x305 grid
        builder=_make_road(23_947_347, seed=9),
    ),
}

#: CHAI BFS's two bundled road datasets (Table 5).
CHAI_DATASETS: Dict[str, DatasetSpec] = {
    "NYR_input": DatasetSpec(
        name="NYR_input",
        category="roadmap",
        description="CHAI BFS bundled New York roads subset",
        paper_vertices=264_346,
        paper_edges=733_846,
        default_scale=1 / 16,
        builder=_make_road(264_346, seed=13),
    ),
    "USA-road-d.BAY": DatasetSpec(
        name="USA-road-d.BAY",
        category="roadmap",
        description="CHAI BFS bundled San Francisco Bay roads (parboil)",
        paper_vertices=321_270,
        paper_edges=800_172,
        default_scale=1 / 16,
        builder=_make_road(321_270, seed=17),
    ),
}

#: Rodinia BFS's three bundled synthetic datasets (Table 6).
RODINIA_DATASETS: Dict[str, DatasetSpec] = {
    "graph4096": DatasetSpec(
        name="graph4096",
        category="rodinia",
        description="Rodinia BFS 4K-vertex synthetic input",
        paper_vertices=4_096,
        paper_edges=24_576,
        default_scale=1.0,  # small enough to run at full size
        builder=_make_rodinia(4_096, seed=21),
    ),
    "graph65536": DatasetSpec(
        name="graph65536",
        category="rodinia",
        description="Rodinia BFS 64K-vertex synthetic input",
        paper_vertices=65_536,
        paper_edges=393_216,
        default_scale=1 / 4,
        builder=_make_rodinia(65_536, seed=23),
    ),
    "graph1MW_6": DatasetSpec(
        name="graph1MW_6",
        category="rodinia",
        description="Rodinia BFS 1M-vertex synthetic input (avg degree 6)",
        paper_vertices=1_000_000,
        paper_edges=5_999_970,
        default_scale=1 / 16,
        builder=_make_rodinia(1_000_000, seed=27),
    ),
}

ALL_DATASETS: Dict[str, DatasetSpec] = {
    **PAPER_DATASETS,
    **CHAI_DATASETS,
    **RODINIA_DATASETS,
}


def dataset(name: str) -> DatasetSpec:
    """Look up a dataset spec by its paper name."""
    try:
        return ALL_DATASETS[name]
    except KeyError:
        raise ValueError(
            f"unknown dataset {name!r}; known: {sorted(ALL_DATASETS)}"
        ) from None


def load_dataset(name: str, scale: Optional[float] = None) -> CSRGraph:
    """Generate a dataset stand-in by name (None -> its default scale)."""
    return dataset(name).build(scale)


def paper_dataset_names() -> List[str]:
    """The six main-evaluation dataset names in table order."""
    return list(PAPER_DATASETS)
