"""Compressed Sparse Row graph representation.

The BFS drivers consume graphs in the same layout the paper's OpenCL
kernels use: a ``Nodes`` array of (starting edge index, edge count) pairs
and a flat ``Edges`` array of target vertices — i.e. CSR.  All arrays are
int64 so they can be copied straight into simulated device buffers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Tuple

import numpy as np


@dataclass(frozen=True)
class DegreeStats:
    """Out-degree statistics in the format of the paper's Tables 1-2."""

    n_vertices: int
    n_edges: int
    min: int
    max: int
    avg: float
    std: float

    def row(self) -> Tuple[int, int, int, int, float, float]:
        return (
            self.n_vertices,
            self.n_edges,
            self.min,
            self.max,
            round(self.avg, 1),
            round(self.std, 2),
        )


class CSRGraph:
    """An immutable directed graph in CSR form.

    Parameters
    ----------
    offsets:
        ``(n_vertices + 1,)`` int64; vertex ``v``'s out-edges are
        ``targets[offsets[v]:offsets[v+1]]``.
    targets:
        ``(n_edges,)`` int64 edge targets.
    name:
        Optional label used in reports.
    """

    __slots__ = ("offsets", "targets", "name")

    def __init__(self, offsets: np.ndarray, targets: np.ndarray, name: str = ""):
        offsets = np.ascontiguousarray(offsets, dtype=np.int64)
        targets = np.ascontiguousarray(targets, dtype=np.int64)
        if offsets.ndim != 1 or offsets.size < 1:
            raise ValueError("offsets must be a 1-D array of size >= 1")
        if offsets[0] != 0:
            raise ValueError("offsets[0] must be 0")
        if np.any(np.diff(offsets) < 0):
            raise ValueError("offsets must be non-decreasing")
        if offsets[-1] != targets.size:
            raise ValueError(
                f"offsets[-1] ({offsets[-1]}) != number of targets "
                f"({targets.size})"
            )
        n = offsets.size - 1
        if targets.size and (targets.min() < 0 or targets.max() >= n):
            raise ValueError("edge target out of range")
        self.offsets = offsets
        self.targets = targets
        self.name = name

    # ------------------------------------------------------------------
    @property
    def n_vertices(self) -> int:
        return self.offsets.size - 1

    @property
    def n_edges(self) -> int:
        return self.targets.size

    def degree(self, v: int | None = None) -> np.ndarray | int:
        """Out-degree of ``v``, or the whole degree vector when v is None."""
        if v is None:
            return np.diff(self.offsets)
        return int(self.offsets[v + 1] - self.offsets[v])

    def neighbors(self, v: int) -> np.ndarray:
        """Targets of ``v``'s out-edges (a view, do not mutate)."""
        return self.targets[self.offsets[v] : self.offsets[v + 1]]

    def iter_edges(self) -> Iterator[Tuple[int, int]]:
        """Yield (source, target) pairs; test/debug helper, O(m) python."""
        for v in range(self.n_vertices):
            for t in self.neighbors(v):
                yield v, int(t)

    # ------------------------------------------------------------------
    @classmethod
    def from_edges(
        cls,
        n_vertices: int,
        edges: Iterable[Tuple[int, int]] | np.ndarray,
        name: str = "",
        dedup: bool = False,
    ) -> "CSRGraph":
        """Build CSR from an edge list (vectorized counting sort).

        ``dedup`` drops duplicate (u, v) pairs and self-loops, matching
        how the SNAP/DIMACS loaders clean raw files.
        """
        arr = np.asarray(
            edges if isinstance(edges, np.ndarray) else list(edges),
            dtype=np.int64,
        )
        if arr.size == 0:
            arr = arr.reshape(0, 2)
        if arr.ndim != 2 or arr.shape[1] != 2:
            raise ValueError("edges must be an (m, 2) array of (src, dst)")
        if arr.size:
            if arr.min() < 0 or arr.max() >= n_vertices:
                raise ValueError("edge endpoint out of range")
        if dedup and arr.size:
            arr = arr[arr[:, 0] != arr[:, 1]]
            arr = np.unique(arr, axis=0)
        src, dst = arr[:, 0], arr[:, 1]
        order = np.argsort(src, kind="stable")
        src, dst = src[order], dst[order]
        counts = np.bincount(src, minlength=n_vertices)
        offsets = np.zeros(n_vertices + 1, dtype=np.int64)
        np.cumsum(counts, out=offsets[1:])
        return cls(offsets, dst, name=name)

    def to_edges(self) -> np.ndarray:
        """The (m, 2) edge array (inverse of :meth:`from_edges`)."""
        src = np.repeat(
            np.arange(self.n_vertices, dtype=np.int64), np.diff(self.offsets)
        )
        return np.column_stack([src, self.targets])

    def symmetrized(self) -> "CSRGraph":
        """The undirected closure: every edge gets its reverse."""
        e = self.to_edges()
        both = np.vstack([e, e[:, ::-1]])
        return CSRGraph.from_edges(
            self.n_vertices, both, name=self.name, dedup=True
        )

    def reversed(self) -> "CSRGraph":
        """The transpose graph."""
        e = self.to_edges()
        return CSRGraph.from_edges(self.n_vertices, e[:, ::-1], name=self.name)

    # ------------------------------------------------------------------
    def degree_stats(self) -> DegreeStats:
        """Out-degree stats in the format of Tables 1 and 2."""
        deg = np.diff(self.offsets)
        if deg.size == 0:
            return DegreeStats(0, 0, 0, 0, 0.0, 0.0)
        return DegreeStats(
            n_vertices=self.n_vertices,
            n_edges=self.n_edges,
            min=int(deg.min()),
            max=int(deg.max()),
            avg=float(deg.mean()),
            std=float(deg.std()),
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        label = f" {self.name!r}" if self.name else ""
        return (
            f"CSRGraph({label} n_vertices={self.n_vertices}, "
            f"n_edges={self.n_edges})"
        )
