"""Synthetic graph generators matching the paper's dataset categories.

The execution environment has no network access, so the SNAP and DIMACS
datasets of Tables 1-2 are replaced by generators that reproduce the
properties the evaluation actually exercises (see DESIGN.md §2):

* :func:`synthetic_saturating` — the paper's own synthetic dataset (§5.2):
  geometric level growth with a fixed fanout until a plateau keeps every
  persistent thread busy, removing lack of parallelism as a factor.
* :func:`social_graph` — Chung-Lu power-law graphs: huge, highly skewed
  fanout, shallow BFS depth (Figures 3b/3c).
* :func:`roadmap_graph` — sparse grid roads: tiny uniform fanout
  (avg 2.4-2.8, max <= 9 as in Table 2), very deep BFS (Figures 3d-3f).
* :func:`rodinia_graph` — the Rodinia BFS suite's generator scheme:
  uniform random degrees, uniform random targets, ~10 BFS levels (§6.4.2).

All generators are deterministic given ``seed``.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from .csr import CSRGraph


def synthetic_saturating(
    n_vertices: int = 10_485_760,
    fanout: int = 4,
    plateau_width: int = 65_536,
    name: str = "Synthetic",
) -> CSRGraph:
    """The paper's thread-saturating synthetic dataset.

    Levels grow by ``fanout`` per level (1, 4, 16, ...) until
    ``plateau_width``, then stay at that width until ``n_vertices`` are
    consumed.  With the defaults the growth phase lasts 8 levels (4^8 =
    65,536), matching §5.2: "After the first 8 levels, both the Spectre
    and Fiji GPUs are fully saturated."

    Every non-leaf vertex gets exactly ``fanout`` out-edges, spread over
    the next level so that each next-level vertex has at least one
    incoming edge (the graph is a connected DAG rooted at vertex 0).
    """
    if n_vertices <= 0:
        raise ValueError("n_vertices must be positive")
    if fanout < 1:
        raise ValueError("fanout must be >= 1")
    if plateau_width < 1:
        raise ValueError("plateau_width must be >= 1")

    # carve vertices into levels
    widths: List[int] = []
    remaining = n_vertices
    width = 1
    while remaining > 0:
        take = min(width, remaining)
        widths.append(take)
        remaining -= take
        if width < plateau_width:
            width = min(width * fanout, plateau_width)

    level_start = np.zeros(len(widths) + 1, dtype=np.int64)
    np.cumsum(widths, out=level_start[1:])

    src_parts = []
    dst_parts = []
    for k in range(len(widths) - 1):
        w, nw = widths[k], widths[k + 1]
        base, nbase = level_start[k], level_start[k + 1]
        i = np.repeat(np.arange(w, dtype=np.int64), fanout)
        j = np.tile(np.arange(fanout, dtype=np.int64), w)
        child = (i * fanout + j) % nw
        src_parts.append(base + i)
        dst_parts.append(nbase + child)
    if src_parts:
        edges = np.column_stack(
            [np.concatenate(src_parts), np.concatenate(dst_parts)]
        )
    else:
        edges = np.empty((0, 2), dtype=np.int64)
    return CSRGraph.from_edges(n_vertices, edges, name=name)


def social_graph(
    n_vertices: int,
    avg_degree: float,
    exponent: float = 2.1,
    max_degree: Optional[int] = None,
    seed: int = 0,
    name: str = "social",
) -> CSRGraph:
    """Chung-Lu style power-law graph (social-network stand-in).

    Vertex weights follow ``w_i ∝ (i+1)^(-1/(exponent-1))``; out-degrees
    are Poisson draws around the weights and edge targets are sampled
    proportionally to weight, which concentrates both out- and in-degree
    on a small set of hubs — the "large edge fanout, not very deep"
    signature of §5.2's social-media category.
    """
    if n_vertices <= 0:
        raise ValueError("n_vertices must be positive")
    if avg_degree <= 0:
        raise ValueError("avg_degree must be positive")
    if exponent <= 1.0:
        raise ValueError("exponent must exceed 1")
    rng = np.random.default_rng(seed)
    ranks = np.arange(1, n_vertices + 1, dtype=np.float64)
    weights = ranks ** (-1.0 / (exponent - 1.0))
    weights *= (avg_degree * n_vertices) / weights.sum()
    if max_degree is not None:
        weights = np.minimum(weights, max_degree)

    degrees = rng.poisson(weights).astype(np.int64)
    if max_degree is not None:
        degrees = np.minimum(degrees, max_degree)
    total = int(degrees.sum())
    if total == 0:
        degrees[0] = 1
        total = 1
    p = weights / weights.sum()
    targets = rng.choice(n_vertices, size=total, p=p).astype(np.int64)
    src = np.repeat(np.arange(n_vertices, dtype=np.int64), degrees)
    edges = np.column_stack([src, targets])
    g = CSRGraph.from_edges(n_vertices, edges, name=name, dedup=True)
    return g.symmetrized()


def roadmap_graph(
    width: int,
    height: int,
    vertical_fraction: float = 0.25,
    diagonal_fraction: float = 0.05,
    seed: int = 0,
    name: str = "roadmap",
) -> CSRGraph:
    """Sparse grid road network (DIMACS roadmap stand-in).

    Construction: all horizontal street segments exist; a random
    ``vertical_fraction`` of vertical segments (at least one per adjacent
    row pair, so the map is connected); a sprinkle of diagonal shortcuts.
    All edges are bidirectional.  Degree statistics land in the Table 2
    envelope (min 1, max <= 9, avg ~2.4-2.8) and BFS from a corner is
    O(width + height) levels deep — the "deep, narrow frontier" that
    starves persistent threads (Figures 3d-3f).
    """
    if width < 2 or height < 2:
        raise ValueError("grid must be at least 2x2")
    if not 0.0 <= vertical_fraction <= 1.0:
        raise ValueError("vertical_fraction must be in [0, 1]")
    if not 0.0 <= diagonal_fraction <= 1.0:
        raise ValueError("diagonal_fraction must be in [0, 1]")
    rng = np.random.default_rng(seed)

    def vid(r: np.ndarray | int, c: np.ndarray | int):
        return np.asarray(r, dtype=np.int64) * width + c

    parts: List[np.ndarray] = []

    # horizontal segments: (r, c) -- (r, c+1), all of them
    r = np.repeat(np.arange(height, dtype=np.int64), width - 1)
    c = np.tile(np.arange(width - 1, dtype=np.int64), height)
    parts.append(np.column_stack([vid(r, c), vid(r, c + 1)]))

    # vertical segments: keep a random fraction, force >=1 per row pair
    r = np.repeat(np.arange(height - 1, dtype=np.int64), width)
    c = np.tile(np.arange(width, dtype=np.int64), height - 1)
    keep = rng.random(r.size) < vertical_fraction
    forced_cols = rng.integers(0, width, size=height - 1)
    keep[np.arange(height - 1) * width + forced_cols] = True
    parts.append(np.column_stack([vid(r[keep], c[keep]), vid(r[keep] + 1, c[keep])]))

    # diagonal shortcuts: (r, c) -- (r+1, c+1)
    r = np.repeat(np.arange(height - 1, dtype=np.int64), width - 1)
    c = np.tile(np.arange(width - 1, dtype=np.int64), height - 1)
    keep = rng.random(r.size) < diagonal_fraction
    parts.append(
        np.column_stack([vid(r[keep], c[keep]), vid(r[keep] + 1, c[keep] + 1)])
    )

    e = np.vstack(parts)
    both = np.vstack([e, e[:, ::-1]])
    return CSRGraph.from_edges(width * height, both, name=name, dedup=True)


def rodinia_graph(
    n_vertices: int,
    avg_degree: int = 6,
    seed: int = 0,
    name: str = "rodinia",
) -> CSRGraph:
    """A graph in the style of Rodinia BFS's dataset generator.

    Rodinia's inputs (graph4096 / graph65536 / graph1MW_6) use uniform
    random degrees around a small mean with uniformly random targets,
    yielding dense, shallow graphs ("none of the three datasets has more
    than 11 levels", §6.4.2).  Degrees are uniform in
    ``[2, 2*avg_degree - 2]`` so the mean is ``avg_degree``.
    """
    if n_vertices <= 0:
        raise ValueError("n_vertices must be positive")
    if avg_degree < 2:
        raise ValueError("avg_degree must be >= 2")
    rng = np.random.default_rng(seed)
    lo, hi = 2, 2 * avg_degree - 2
    degrees = rng.integers(lo, hi + 1, size=n_vertices).astype(np.int64)
    total = int(degrees.sum())
    targets = rng.integers(0, n_vertices, size=total).astype(np.int64)
    src = np.repeat(np.arange(n_vertices, dtype=np.int64), degrees)
    edges = np.column_stack([src, targets])
    return CSRGraph.from_edges(n_vertices, edges, name=name, dedup=True)


def path_graph(n_vertices: int, name: str = "path") -> CSRGraph:
    """A directed path 0 -> 1 -> ... (worst-case parallelism; tests)."""
    if n_vertices <= 0:
        raise ValueError("n_vertices must be positive")
    src = np.arange(n_vertices - 1, dtype=np.int64)
    edges = np.column_stack([src, src + 1])
    return CSRGraph.from_edges(n_vertices, edges, name=name)


def star_graph(n_vertices: int, name: str = "star") -> CSRGraph:
    """Vertex 0 points at everyone else (max single-level fanout; tests)."""
    if n_vertices <= 0:
        raise ValueError("n_vertices must be positive")
    dst = np.arange(1, n_vertices, dtype=np.int64)
    edges = np.column_stack([np.zeros(n_vertices - 1, dtype=np.int64), dst])
    return CSRGraph.from_edges(n_vertices, edges, name=name)


def complete_binary_tree(depth: int, name: str = "btree") -> CSRGraph:
    """A complete binary tree of the given depth (tests, examples)."""
    if depth < 0:
        raise ValueError("depth must be non-negative")
    n = (1 << (depth + 1)) - 1
    parents = np.arange((n - 1) // 2, dtype=np.int64)
    left = 2 * parents + 1
    right = 2 * parents + 2
    edges = np.column_stack(
        [np.concatenate([parents, parents]), np.concatenate([left, right])]
    )
    return CSRGraph.from_edges(n, edges, name=name)
