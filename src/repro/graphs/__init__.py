"""Graph substrate: CSR representation, generators, file formats, datasets."""

from .csr import CSRGraph, DegreeStats
from .datasets import (
    ALL_DATASETS,
    CHAI_DATASETS,
    PAPER_DATASETS,
    RODINIA_DATASETS,
    DatasetSpec,
    dataset,
    load_dataset,
    paper_dataset_names,
)
from .generators import (
    complete_binary_tree,
    path_graph,
    roadmap_graph,
    rodinia_graph,
    social_graph,
    star_graph,
    synthetic_saturating,
)
from .io import (
    load_dimacs_gr,
    load_rodinia,
    load_snap_edgelist,
    save_dimacs_gr,
    save_rodinia,
    save_snap_edgelist,
)
from .traversal import (
    UNREACHED,
    bfs_levels,
    eccentricity,
    level_profile,
    reachable_count,
    saturation_levels,
)

__all__ = [
    "ALL_DATASETS",
    "CHAI_DATASETS",
    "CSRGraph",
    "DatasetSpec",
    "DegreeStats",
    "PAPER_DATASETS",
    "RODINIA_DATASETS",
    "UNREACHED",
    "bfs_levels",
    "complete_binary_tree",
    "dataset",
    "eccentricity",
    "level_profile",
    "load_dataset",
    "load_dimacs_gr",
    "load_rodinia",
    "load_snap_edgelist",
    "paper_dataset_names",
    "path_graph",
    "reachable_count",
    "roadmap_graph",
    "rodinia_graph",
    "saturation_levels",
    "save_dimacs_gr",
    "save_rodinia",
    "save_snap_edgelist",
    "social_graph",
    "star_graph",
    "synthetic_saturating",
]
