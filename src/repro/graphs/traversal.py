"""Vectorized CPU breadth-first search.

This is the reproduction's correctness oracle: every simulated BFS result
is checked against :func:`bfs_levels`.  It also powers the dynamic-
parallelism profiles of Figure 3 (vertices available per level).
"""

from __future__ import annotations

from typing import List

import numpy as np

from .csr import CSRGraph

#: level value for unreachable vertices.
UNREACHED = np.int64(-1)


def bfs_levels(graph: CSRGraph, source: int) -> np.ndarray:
    """BFS depth of every vertex from ``source`` (-1 when unreachable).

    Frontier-sweep formulation: each round gathers all out-edges of the
    current frontier with one fancy-indexing pass, so the cost is
    O(V + E) with NumPy-vectorized inner loops.
    """
    n = graph.n_vertices
    if not 0 <= source < n:
        raise ValueError(f"source {source} out of range [0, {n})")
    level = np.full(n, UNREACHED, dtype=np.int64)
    level[source] = 0
    frontier = np.array([source], dtype=np.int64)
    depth = 0
    offsets, targets = graph.offsets, graph.targets
    while frontier.size:
        depth += 1
        starts = offsets[frontier]
        ends = offsets[frontier + 1]
        total = int((ends - starts).sum())
        if total == 0:
            break
        # gather all frontier adjacency lists in one shot
        idx = np.repeat(starts, ends - starts) + _ragged_arange(ends - starts)
        neigh = targets[idx]
        fresh = neigh[level[neigh] == UNREACHED]
        if fresh.size == 0:
            break
        fresh = np.unique(fresh)
        level[fresh] = depth
        frontier = fresh
    return level


def _ragged_arange(counts: np.ndarray) -> np.ndarray:
    """Concatenation of ``arange(c)`` for every c in counts (vectorized).

    Zero-length lists contribute nothing, matching how ``np.repeat``
    drops them in the caller.
    """
    counts = np.asarray(counts, dtype=np.int64)
    counts = counts[counts > 0]
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    out = np.ones(total, dtype=np.int64)
    out[0] = 0
    if counts.size > 1:
        starts = np.cumsum(counts[:-1])
        out[starts] = 1 - counts[:-1]
    np.cumsum(out, out=out)
    return out


def level_profile(graph: CSRGraph, source: int) -> np.ndarray:
    """Vertices available for thread assignment at each BFS level.

    This is the quantity Figure 3 plots per dataset: the dynamic data
    parallelism a persistent-thread scheduler can exploit at each instant.
    """
    level = bfs_levels(graph, source)
    reached = level[level >= 0]
    if reached.size == 0:
        return np.zeros(0, dtype=np.int64)
    return np.bincount(reached.astype(np.int64))


def reachable_count(graph: CSRGraph, source: int) -> int:
    """Number of vertices reachable from ``source`` (incl. itself)."""
    return int((bfs_levels(graph, source) >= 0).sum())


def eccentricity(graph: CSRGraph, source: int) -> int:
    """Depth of the BFS tree from ``source`` (max finite level)."""
    level = bfs_levels(graph, source)
    reached = level[level >= 0]
    return int(reached.max()) if reached.size else 0


def saturation_levels(
    profile: np.ndarray, n_threads: int
) -> List[int]:
    """Levels whose available parallelism saturates ``n_threads`` threads.

    §5.2: the synthetic dataset saturates both GPUs "after the first 8
    levels"; roadmaps barely ever do.  The harness uses this to annotate
    Figure 3 reproductions.
    """
    return [i for i, width in enumerate(profile) if int(width) >= n_threads]
