"""Graph file formats used by the paper's sources.

Three loaders/writers so that real dataset files can be dropped in when
available (the generators in :mod:`repro.graphs.generators` are the
offline stand-ins):

* **DIMACS** ``.gr`` — the 9th DIMACS implementation challenge roadmap
  format (Table 2's USA-road-d.* files): ``c`` comment lines, one
  ``p sp <n> <m>`` problem line, and ``a <src> <dst> <weight>`` arc lines
  with 1-based vertex ids.
* **SNAP** edge lists — Stanford SNAP's plain text format (Table 1's
  gplus_combined / soc-LiveJournal1): ``#`` comment lines and
  whitespace-separated ``src dst`` pairs, 0-based.
* **Rodinia BFS** — the Rodinia benchmark's custom format (§6.4.2):
  vertex count; per-vertex ``start degree`` pairs; source vertex; edge
  count; per-edge ``target weight`` pairs.

All loaders tolerate blank lines and normalize vertex ids to dense
0-based ints.
"""

from __future__ import annotations

import io
from pathlib import Path
from typing import TextIO, Tuple, Union

import numpy as np

from .csr import CSRGraph

PathLike = Union[str, Path, TextIO]


def _open_read(f: PathLike):
    if hasattr(f, "read"):
        return f, False
    return open(f, "r", encoding="utf-8"), True


def _open_write(f: PathLike):
    if hasattr(f, "write"):
        return f, False
    return open(f, "w", encoding="utf-8"), True


# ----------------------------------------------------------------------
# DIMACS .gr
# ----------------------------------------------------------------------
def load_dimacs_gr(f: PathLike, name: str = "") -> CSRGraph:
    """Parse a DIMACS shortest-path ``.gr`` file into a CSR graph."""
    fh, close = _open_read(f)
    try:
        n = None
        edges = []
        for line in fh:
            line = line.strip()
            if not line or line.startswith("c"):
                continue
            if line.startswith("p"):
                parts = line.split()
                if len(parts) < 4 or parts[1] != "sp":
                    raise ValueError(f"bad DIMACS problem line: {line!r}")
                n = int(parts[2])
            elif line.startswith("a"):
                parts = line.split()
                if len(parts) < 3:
                    raise ValueError(f"bad DIMACS arc line: {line!r}")
                edges.append((int(parts[1]) - 1, int(parts[2]) - 1))
        if n is None:
            raise ValueError("DIMACS file has no problem ('p sp') line")
        arr = np.asarray(edges, dtype=np.int64).reshape(-1, 2)
        return CSRGraph.from_edges(n, arr, name=name, dedup=True)
    finally:
        if close:
            fh.close()


def save_dimacs_gr(graph: CSRGraph, f: PathLike, comment: str = "") -> None:
    """Write a CSR graph as DIMACS ``.gr`` (unit arc weights)."""
    fh, close = _open_write(f)
    try:
        if comment:
            for line in comment.splitlines():
                fh.write(f"c {line}\n")
        fh.write(f"p sp {graph.n_vertices} {graph.n_edges}\n")
        for u, v in graph.iter_edges():
            fh.write(f"a {u + 1} {v + 1} 1\n")
    finally:
        if close:
            fh.close()


# ----------------------------------------------------------------------
# SNAP edge list
# ----------------------------------------------------------------------
def load_snap_edgelist(f: PathLike, name: str = "") -> CSRGraph:
    """Parse a SNAP text edge list; ids are compacted to 0..n-1."""
    fh, close = _open_read(f)
    try:
        src = []
        dst = []
        for line in fh:
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split()
            if len(parts) < 2:
                raise ValueError(f"bad SNAP edge line: {line!r}")
            src.append(int(parts[0]))
            dst.append(int(parts[1]))
        s = np.asarray(src, dtype=np.int64)
        d = np.asarray(dst, dtype=np.int64)
        ids = np.unique(np.concatenate([s, d])) if s.size else np.empty(0, np.int64)
        remap = {int(v): i for i, v in enumerate(ids)}
        if s.size:
            s = np.fromiter((remap[int(v)] for v in s), np.int64, s.size)
            d = np.fromiter((remap[int(v)] for v in d), np.int64, d.size)
        n = int(ids.size)
        return CSRGraph.from_edges(
            max(n, 1), np.column_stack([s, d]), name=name, dedup=True
        )
    finally:
        if close:
            fh.close()


def save_snap_edgelist(graph: CSRGraph, f: PathLike, comment: str = "") -> None:
    """Write a CSR graph as a SNAP-style edge list."""
    fh, close = _open_write(f)
    try:
        if comment:
            for line in comment.splitlines():
                fh.write(f"# {line}\n")
        fh.write(f"# Nodes: {graph.n_vertices} Edges: {graph.n_edges}\n")
        for u, v in graph.iter_edges():
            fh.write(f"{u}\t{v}\n")
    finally:
        if close:
            fh.close()


# ----------------------------------------------------------------------
# Rodinia BFS format
# ----------------------------------------------------------------------
def load_rodinia(f: PathLike, name: str = "") -> Tuple[CSRGraph, int]:
    """Parse Rodinia's BFS input format; returns (graph, source vertex)."""
    fh, close = _open_read(f)
    try:
        tokens = iter(fh.read().split())

        def nxt() -> int:
            try:
                return int(next(tokens))
            except StopIteration:
                raise ValueError("truncated Rodinia file") from None

        n = nxt()
        starts = np.empty(n, dtype=np.int64)
        counts = np.empty(n, dtype=np.int64)
        for i in range(n):
            starts[i] = nxt()
            counts[i] = nxt()
        source = nxt()
        m = nxt()
        targets = np.empty(m, dtype=np.int64)
        for j in range(m):
            targets[j] = nxt()
            nxt()  # edge weight, unused by BFS
        offsets = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(counts, out=offsets[1:])
        if offsets[-1] != m:
            raise ValueError(
                f"degree sum {int(offsets[-1])} != edge count {m}"
            )
        # Rodinia files list each vertex's edges at `starts[i]`; verify the
        # layout is the standard packed CSR before reusing targets directly.
        if not np.array_equal(starts, offsets[:-1]):
            order = np.argsort(starts, kind="stable")
            packed = np.concatenate(
                [targets[starts[i] : starts[i] + counts[i]] for i in order]
            ) if n else targets
            targets = packed
        return CSRGraph(offsets, targets, name=name), source
    finally:
        if close:
            fh.close()


def save_rodinia(graph: CSRGraph, f: PathLike, source: int = 0) -> None:
    """Write a CSR graph in Rodinia's BFS input format (unit weights)."""
    fh, close = _open_write(f)
    try:
        n = graph.n_vertices
        fh.write(f"{n}\n")
        for v in range(n):
            start = int(graph.offsets[v])
            cnt = int(graph.offsets[v + 1] - graph.offsets[v])
            fh.write(f"{start} {cnt}\n")
        fh.write(f"{source}\n")
        fh.write(f"{graph.n_edges}\n")
        for t in graph.targets:
            fh.write(f"{int(t)} 1\n")
    finally:
        if close:
            fh.close()
