#!/usr/bin/env python3
"""Beyond BFS: N-Queens on the persistent-thread scheduler.

The paper argues its queue "can be used for other purposes on GPUs with
little change" (§1); the related work demonstrated GPU task management
with the N-Queens constraint-satisfaction search.  Here every task is a
partial placement packed into a single int64 token; expanding a
placement enqueues its legal extensions, and complete boards bump a
global atomic counter.

Run:  python examples/nqueens_tasks.py
"""

from repro import simt
from repro.workloads import KNOWN_SOLUTIONS, run_nqueens

def main() -> None:
    device = simt.TESTGPU
    print(f"device: {device.name}\n")

    print(f"{'N':>3s} {'solutions':>10s} {'tasks':>8s} {'sim time':>12s}")
    for n in (4, 5, 6, 7):
        result = run_nqueens(n, "RF/AN", device, 8)
        assert result.solutions == KNOWN_SOLUTIONS[n]
        print(
            f"{n:3d} {result.solutions:10d} {result.tasks:8d} "
            f"{result.seconds * 1e6:10.1f} us"
        )

    print("\nqueue variants on the 7-queens search:")
    for variant in ("BASE", "AN", "RF/AN"):
        result = run_nqueens(7, variant, device, 8)
        print(
            f"  {variant:6s} {result.seconds * 1e6:10.1f} us "
            f"(tasks: {result.tasks}, CAS failures: "
            f"{result.stats.cas_failures})"
        )
    print("\nall counts match the known N-Queens solution numbers")

if __name__ == "__main__":
    main()
