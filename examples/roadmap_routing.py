#!/usr/bin/env python3
"""Road-network reachability: the starved-parallelism regime.

Road maps are the paper's hard case (§5.2): tiny fanout, hundreds of BFS
levels, never enough frontier to feed a big GPU.  This example computes
hop distances from a depot over a generated city grid on both of the
paper's device geometries and shows (a) why extra threads buy nothing
here and (b) that the retry-free queue still wins, just by less.

Run:  python examples/roadmap_routing.py
"""

import numpy as np

from repro import simt
from repro.bfs import run_persistent_bfs
from repro.graphs import level_profile, roadmap_graph

def main() -> None:
    # a ~90x90-block city; vertex 0 is the depot in one corner
    city = roadmap_graph(90, 90, seed=42)
    city.name = "city-grid"
    depot = 0
    prof = level_profile(city, depot)
    print(
        f"city: {city.n_vertices} intersections, {city.n_edges} road "
        f"segments, {prof.size} BFS levels, widest level {int(prof.max())}"
    )

    print("\nscaling the same search across workgroups (RF/AN, Fiji):")
    print(f"{'nWG':>5s} {'threads':>8s} {'sim time':>12s} {'speedup':>8s}")
    base_time = None
    for wg in (1, 4, 16, 64, 224):
        run = run_persistent_bfs(city, depot, "RF/AN", simt.FIJI, wg,
                                 verify=True)
        base_time = base_time or run.seconds
        print(
            f"{wg:5d} {wg * 64:8d} {run.seconds * 1e3:10.3f} ms "
            f"{base_time / run.seconds:7.2f}x"
        )
    print("-> the frontier never feeds more than a few hundred lanes, so "
          "added threads idle (paper §6.1)")

    print("\nqueue variants at the paper's Spectre geometry (32 WGs):")
    for variant in ("BASE", "AN", "RF/AN"):
        run = run_persistent_bfs(city, depot, variant, simt.SPECTRE, 32,
                                 verify=True)
        print(f"  {variant:6s} {run.seconds * 1e3:9.3f} ms "
              f"(CAS failures: {run.stats.cas_failures})")

    # use the result: hop histogram for delivery-zone planning
    run = run_persistent_bfs(city, depot, "RF/AN", simt.SPECTRE, 32)
    hops = run.costs[run.costs >= 0]
    print(
        f"\ndepot reaches {hops.size} intersections; "
        f"median {int(np.median(hops))} hops, max {int(hops.max())} hops"
    )

if __name__ == "__main__":
    main()
