#!/usr/bin/env python3
"""Weighted shortest paths and connectivity on the same scheduler.

BFS is the paper's driver, but the queue is a general task scheduler:
this example runs weighted single-source shortest paths (label-
correcting relaxation — far more re-enqueues than BFS) and
label-propagation connected components over a road network, both
verified against independent oracles (SciPy Dijkstra, union-find).

Run:  python examples/weighted_routing.py
"""

import numpy as np

from repro import simt
from repro.graphs import roadmap_graph
from repro.workloads import random_weights, run_components, run_sssp

def main() -> None:
    # a city grid with travel-time weights
    city = roadmap_graph(40, 40, seed=11)
    city.name = "weighted-city"
    weights = random_weights(city, max_weight=12, seed=12)
    device = simt.TESTGPU
    print(
        f"city: {city.n_vertices} intersections, {city.n_edges} segments, "
        f"weights 1..12; device {device.name}\n"
    )

    print("single-source shortest paths (verified against Dijkstra):")
    for variant in ("BASE", "AN", "RF/AN"):
        result = run_sssp(city, weights, 0, variant, device, 8, verify=True)
        print(
            f"  {variant:6s} {result.seconds * 1e3:8.3f} ms  "
            f"re-enqueues: {result.reenqueues:5d}  "
            f"CAS failures: {result.stats.cas_failures}"
        )
    result = run_sssp(city, weights, 0, "RF/AN", device, 8)
    reach = result.dist[result.dist >= 0]
    print(
        f"  farthest intersection: {int(reach.max())} travel-time units; "
        f"median {int(np.median(reach))}\n"
    )

    print("connected components (verified against union-find):")
    comp = run_components(city, "RF/AN", device, 8)
    print(f"  the road network has {comp.n_components} component(s)")

    # sever the city into halves and re-analyze
    half = city.n_vertices // 2
    edges = city.to_edges()
    keep = ~((edges[:, 0] < half) ^ (edges[:, 1] < half))
    from repro.graphs import CSRGraph

    severed = CSRGraph.from_edges(city.n_vertices, edges[keep], name="severed")
    comp2 = run_components(severed, "RF/AN", device, 8)
    print(
        f"  after severing all north-south segments: "
        f"{comp2.n_components} components"
    )

if __name__ == "__main__":
    main()
