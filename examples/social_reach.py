#!/usr/bin/env python3
"""Influence reach over a social graph: the divergence-heavy regime.

Social networks have hub vertices with thousands of neighbours next to
leaves with a handful (Table 1's std >> avg).  Under lock-step SIMT
execution a hub can stall its whole wavefront — the problem the paper's
fixed work-cycle granularity (footnote 3) addresses.  This example
measures k-hop reach from the biggest hub and sweeps the work-cycle
granularity to show the refactoring at work.

Run:  python examples/social_reach.py
"""

import numpy as np

from repro import simt
from repro.bfs import run_persistent_bfs
from repro.graphs import social_graph

def main() -> None:
    net = social_graph(
        8_000, avg_degree=40, exponent=1.9, max_degree=2_000, seed=7
    )
    net.name = "social-net"
    degrees = net.degree()
    hub = int(np.argmax(degrees))
    print(
        f"network: {net.n_vertices} users, {net.n_edges} follows; "
        f"top hub has {int(degrees[hub])} edges "
        f"(avg {degrees.mean():.1f})"
    )

    run = run_persistent_bfs(net, hub, "RF/AN", simt.SPECTRE, 32, verify=True)
    reach = run.costs
    for k in (1, 2, 3):
        n_k = int(((reach >= 0) & (reach <= k)).sum())
        print(f"  within {k} hop(s): {n_k} users "
              f"({100 * n_k / net.n_vertices:.1f}%)")

    print("\nwork-cycle granularity sweep (paper footnote 3, RF/AN):")
    print(f"{'sub-tasks':>10s} {'sim time':>12s}")
    for subtasks in (1, 2, 4, 8, 64):
        run = run_persistent_bfs(
            net, hub, "RF/AN", simt.SPECTRE, 32,
            subtasks_per_cycle=subtasks, verify=True,
        )
        note = "  <- paper's choice" if subtasks == 4 else ""
        print(f"{subtasks:10d} {run.seconds * 1e3:10.3f} ms{note}")
    print(
        "-> very large work cycles let hub lanes monopolize their "
        "wavefronts; small fixed granularity keeps lanes uniform"
    )

if __name__ == "__main__":
    main()
