#!/usr/bin/env python3
"""Profiling the queue variants with the simulator's analysis layer.

Shows how to go beyond end-to-end times: run the same workload under
each queue variant (plus the distributed-with-stealing extension) and
compare issue-pipe utilization, atomic-unit pressure, and retry rates —
the quantities that explain *why* the retry-free arbitrary-n design wins.

Run:  python examples/queue_profiling.py
"""

import numpy as np

from repro import simt
from repro.bfs import bfs_queue_capacity
from repro.bfs.common import alloc_graph_buffers, read_costs
from repro.bfs.persistent import BFSWorker
from repro.core import SchedulerControl, make_queue, persistent_kernel
from repro.ext import DistributedWorkQueues
from repro.graphs import bfs_levels, synthetic_saturating
from repro.simt import analyze, utilization_report

def run_variant(queue, graph, device, workgroups):
    engine = simt.Engine(device)
    alloc_graph_buffers(engine.memory, graph, 0)
    sched = SchedulerControl()
    queue.allocate(engine.memory)
    sched.allocate(engine.memory)
    queue.seed(engine.memory, [0])
    sched.seed(engine.memory, 1)
    kernel = persistent_kernel(queue, BFSWorker(), sched)
    result = engine.launch(kernel, workgroups)
    costs = read_costs(engine.memory, graph.n_vertices)
    assert np.array_equal(costs, bfs_levels(graph, 0)), "BFS mismatch"
    return result

def main() -> None:
    graph = synthetic_saturating(30_000, plateau_width=4_096)
    graph.name = "profiled-synthetic"
    device = simt.TESTGPU
    workgroups = 8
    cap = bfs_queue_capacity(graph, device, workgroups)
    print(
        f"workload: {graph.n_vertices} vertices; device {device.name}, "
        f"{workgroups} workgroups\n"
    )

    runs = {}
    for variant in ("BASE", "AN", "RF/AN"):
        runs[variant] = run_variant(
            make_queue(variant, cap), graph, device, workgroups
        )
    runs["DIST x4"] = run_variant(
        DistributedWorkQueues(cap, n_queues=4), graph, device, workgroups
    )

    print(utilization_report(runs))

    base, rfan = analyze(runs["BASE"]), analyze(runs["RF/AN"])
    print(
        f"\nBASE spends {base.atomic_pressure:.2f} serialized atomic "
        f"cycles per run cycle vs RF/AN's {rfan.atomic_pressure:.2f} — "
        "the contended hot spot the proxy fetch-add removes (paper §3.2)"
    )

if __name__ == "__main__":
    main()
