#!/usr/bin/env python3
"""Quickstart: the retry-free arbitrary-n queue in five minutes.

Builds a small irregular graph, runs the persistent-thread BFS with each
queue variant on a simulated GPU, verifies every result against the CPU
oracle, and prints the contention statistics that motivate the paper's
design.

Run:  python examples/quickstart.py
"""

from repro import simt
from repro.bfs import run_persistent_bfs
from repro.graphs import synthetic_saturating

def main() -> None:
    # 1. a workload with plenty of dynamic parallelism: the paper's
    #    fanout-4 synthetic dataset, scaled to run in seconds.
    graph = synthetic_saturating(n_vertices=20_000, plateau_width=2_048)
    graph.name = "quickstart-synthetic"
    print(f"graph: {graph.n_vertices} vertices, {graph.n_edges} edges")

    # 2. a simulated GPU.  TESTGPU is small and fast; simt.FIJI and
    #    simt.SPECTRE reproduce the paper's hardware geometry.
    device = simt.TESTGPU
    workgroups = 8
    print(f"device: {device.name}, {workgroups} workgroups of "
          f"{device.wavefront_size} lanes\n")

    # 3. run the same top-down BFS with each queue variant.
    print(f"{'variant':8s} {'sim time':>12s} {'atomic ops':>11s} "
          f"{'CAS fails':>10s} {'queue-empty':>12s}")
    results = {}
    for variant in ("BASE", "AN", "RF/AN"):
        run = run_persistent_bfs(
            graph, 0, variant, device, workgroups, verify=True
        )
        results[variant] = run
        print(
            f"{variant:8s} {run.seconds * 1e3:10.3f} ms "
            f"{run.stats.total_atomic_requests:11d} "
            f"{run.stats.cas_failures:10d} "
            f"{int(run.stats.custom.get('queue.empty_exceptions', 0)):12d}"
        )

    # 4. the paper's claim in one line: the retry-free / arbitrary-n
    #    queue never fails an atomic and never raises queue-empty.
    rfan = results["RF/AN"]
    assert rfan.stats.cas_failures == 0
    assert rfan.stats.custom.get("queue.empty_exceptions", 0) == 0
    speedup = results["BASE"].seconds / rfan.seconds
    print(f"\nRF/AN vs BASE speedup on this run: {speedup:.2f}x")
    print("all three cost vectors verified against the CPU oracle")

if __name__ == "__main__":
    main()
