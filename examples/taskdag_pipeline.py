#!/usr/bin/env python3
"""Dependency-driven task graphs: the paper's abstract setting, literally.

§2.1: "a task may depend on the completion of other task(s) ... when all
dependencies for a task clear, that task can be scheduled for execution."
This example builds a randomized build-pipeline-style DAG (compile ->
link -> test fan-in/fan-out), executes it under the persistent scheduler
with each queue variant, and verifies that the observed start order is a
topological order of the DAG.

Run:  python examples/taskdag_pipeline.py
"""

import numpy as np

from repro import simt
from repro.workloads import random_dag, run_taskdag

def main() -> None:
    dag, weights = random_dag(
        2_000, avg_deps=2.5, max_weight=64, seed=2024
    )
    indeg = np.bincount(dag.targets, minlength=dag.n_vertices)
    roots = int((indeg == 0).sum())
    print(
        f"pipeline: {dag.n_vertices} tasks, {dag.n_edges} dependencies, "
        f"{roots} initially-ready roots, "
        f"total work {int(weights.sum())} units"
    )

    device = simt.TESTGPU
    print(f"device: {device.name}\n")
    print(f"{'variant':8s} {'sim time':>12s} {'atomics':>9s} "
          f"{'CAS fails':>10s}")
    for variant in ("BASE", "AN", "RF/AN"):
        result = run_taskdag(dag, weights, variant, device, 8)
        # verify=True already checked the topological-order oracle
        print(
            f"{variant:8s} {result.seconds * 1e3:10.3f} ms "
            f"{result.stats.total_atomic_requests:9d} "
            f"{result.stats.cas_failures:10d}"
        )

    # the critical path bounds any schedule; show achieved parallelism
    result = run_taskdag(dag, weights, "RF/AN", device, 8)
    print(
        f"\nexecuted {result.n_tasks} tasks; start order verified as a "
        "topological order of the dependency DAG"
    )

if __name__ == "__main__":
    main()
