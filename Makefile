# Development entry points.  The environment this repo was built in has
# no `wheel` package, hence the setup.py fallback; on normal machines
# `pip install -e .[test]` works directly.

.PHONY: install test bench bench-engine harness-quick harness-full examples clean

install:
	pip install -e .[test] || python setup.py develop

test:
	pytest tests/

bench:
	pytest benchmarks/ --benchmark-only

bench-engine:
	python tools/bench_engine.py --quick --out BENCH_engine.json

harness-quick:
	python -m repro.harness all --quick --out results-quick/

harness-full:
	python -m repro.harness all --out results/

examples:
	python examples/quickstart.py
	python examples/roadmap_routing.py
	python examples/social_reach.py
	python examples/nqueens_tasks.py
	python examples/taskdag_pipeline.py
	python examples/queue_profiling.py

clean:
	rm -rf build dist *.egg-info src/*.egg-info .pytest_cache \
	    benchmarks/reports results-quick
	find . -name __pycache__ -type d -exec rm -rf {} +
