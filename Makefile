# Development entry points.  The environment this repo was built in has
# no `wheel` package, hence the setup.py fallback; on normal machines
# `pip install -e .[test]` works directly.

.PHONY: install test test-fast test-slow bench bench-engine bench-diff \
    verify verify-deep harness-quick harness-full runs-report blame \
    watch postmortem serve serve-smoke examples clean

# window size for runs-report (make runs-report N=25)
N ?= 10

install:
	pip install -e .[test] || python setup.py develop

test:
	pytest tests/

# the CI shards (marker registry in pyproject): fast unit/differential
# tests vs the multi-minute end-to-end bit-identity guards
test-fast:
	pytest tests/ -m "not slow"

test-slow:
	pytest tests/ -m slow

bench:
	pytest benchmarks/ --benchmark-only

# schedule-exploration checker for the queue family (docs/verification.md)
verify:
	python -m repro.verify --quick --out counterexamples

verify-deep:
	python -m repro.verify --deep --keep-going --out counterexamples

bench-engine:
	python tools/bench_engine.py --quick --out BENCH_engine.json

# fresh quick bench diffed against the committed baseline (exit 1 on regression)
bench-diff:
	python tools/bench_engine.py --quick --no-ledger --out bench_now.json
	python tools/bench_diff.py BENCH_engine.json bench_now.json

# last N ledger runs with a verdict vs each run's predecessor
runs-report:
	python -m repro.harness runs report -n $(N)

# stall attribution + causal what-if for a quick BFS run (docs/blame.md)
blame:
	python -m repro.harness blame bfs --quick --out results/blame

# live dashboard over a runlog (make watch RUN=results/run.jsonl)
RUN ?= results/run.jsonl
watch:
	python -m repro.harness watch $(RUN)

# render the newest post-mortem bundle from a failed --flight run
postmortem:
	python -m repro.harness postmortem show

# the scheduler-as-a-service daemon (docs/serving.md); submit jobs with
# `python -m repro.serve submit fig1 --wait`
serve:
	python -m repro.serve start --port 8765 --data results/serve

# the CI service gate, locally: submit/run/fetch/cancel/shutdown plus
# the kill -9 crash-recovery drill
serve-smoke:
	python tools/serve_smoke.py

harness-quick:
	python -m repro.harness all --quick --out results-quick/

harness-full:
	python -m repro.harness all --out results/

examples:
	python examples/quickstart.py
	python examples/roadmap_routing.py
	python examples/social_reach.py
	python examples/nqueens_tasks.py
	python examples/taskdag_pipeline.py
	python examples/queue_profiling.py

clean:
	rm -rf build dist *.egg-info src/*.egg-info .pytest_cache \
	    benchmarks/reports results-quick
	find . -name __pycache__ -type d -exec rm -rf {} +
